"""Batched packet engine: train-structured calendar for packetised runs.

:class:`BatchedPacketCore` is the ``engine="batched"`` implementation
behind :class:`repro.fabric.packetsim.PacketBackend`.  It fuses the three
objects of the event-driven path -- the :class:`~repro.sim.engine.Simulator`
calendar, the :class:`~repro.fabric.packetsim.PacketLevelNetwork`
forwarding plane and the :class:`~repro.sim.transport.PacketTransport`
windowing layer -- into one core that schedules *trains* instead of
per-packet events, while reproducing the event engine's results **bit for
bit**.

Why it is fast
--------------
The event engine pays, per packet-hop: an :class:`~repro.sim.engine.Event`
dataclass allocation and heap push/pop (with dataclass ``__lt__`` tie
comparisons), a callback dispatch with kwargs, and two reads of the
``Link.capacity_bps`` property (a sum over lane objects) plus fresh
``propagation_delay``/``phy_latency`` reads.  The batched engine instead:

* carries a whole single-flow segment *train* (a window fill, a refill, a
  retransmission) as **one** tuple-keyed heap entry whose per-segment
  arrival times advance hop by hop,
* advances a maximal FIFO run at a port in one pass -- vectorised with
  ``numpy`` when the run is fully backlogged and drop-free (the common
  congested case; departure times are one ``np.add.accumulate`` over
  serialization times, queueing/backlog/ECN one vector op each), falling
  back to a tight scalar loop otherwise,
* coalesces same-port same-instant work by construction: a window fill
  injects all its segments as a single train at one instant rather than
  one calendar event per segment, and deliveries of consecutive segments
  ride one delivery train per epoch,
* caches everything re-derivable per directed link -- the port, its
  statistics stream, the switch's forwarding-latency function, buffer
  thresholds -- in one context record, with the *live* link properties
  (capacity, propagation, PHY latency) refreshed per mutation epoch
  (see below) instead of re-derived from lane objects on every hop.

Why it is bit-exact
-------------------
The event engine executes events in strict ``(time, priority, seq)``
order; every packet event uses priority 0, so the order is ``(time,
seq)`` with ``seq`` assigned at scheduling time.  The batched core
assigns each segment a *virtual* ``seq`` from the same counter, at the
same logical points the event engine would have called ``schedule_at``,
and before touching a segment it checks that nothing else -- the heap
head, or the train's own just-computed continuations -- orders strictly
before it.  If something does, the train is split and the remainder
re-enqueued under its original times and seqs.  Every side effect
(port counters, EWMA statistics observations, queueing samples, flow
state transitions, retransmit timers) therefore happens in exactly the
order the event engine produces, and every float is computed by the same
sequence of IEEE-754 operations (``np.add.accumulate`` is a sequential
left fold, identical to the scalar chain; the EWMA update is inlined
operation for operation).  ``tests/test_packet_parity.py`` pins this
across every small scenario x controller.

Mutation epochs
---------------
The event engine reads link properties live on every forward so that
mid-run mutations (controller callbacks, failure plans, direct fabric
edits between ``run()`` calls) take effect immediately.  Mutations can
only ever happen inside a calendar callback or between ``run()`` calls --
never between two segments of one processed train -- so the core bumps an
epoch counter at exactly those boundaries and re-reads the live fabric
when a port's cache is stale.  Cached and live reads are then
indistinguishable.

Differences from the event engine (documented, not observable in
metrics): ``events_executed`` counts processed calendar *entries*
(trains, deliveries, callbacks), not per-packet events, so ``max_events``
budgets truncate at different points; per-packet ``inject`` of hand-built
packets is not supported (use the event engine for that).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import replace as _dataclass_replace
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.engine import SimulationError
from repro.sim.flow import Flow
from repro.sim.packet import HopRecord, Packet
from repro.sim.trace import NullTrace, TraceRecorder
from repro.sim.transport import (
    FlowTransportState,
    TransportConfig,
    segment_layout,
)

DirectedKey = Tuple[str, str]

#: Heap-entry kinds.  Entries are ``(time, seq, kind, payload...)`` tuples;
#: ``seq`` is unique, so tuple comparison never reaches ``kind``.
_CALL = 0
_TRAIN = 1
_DELIVER = 2
#: Internal transport callbacks (flow starts, retransmit timers): cannot
#: mutate the fabric, so they skip the mutation-epoch bump that external
#: callbacks force.
_ICALL = 3

#: Train payload layout: a plain tuple (cheaper than any object) of the
#: flow's transport state, its path snapshot, the current hop index, and
#: parallel per-segment lists.  ``times`` holds head-available times for
#: forward trains and delivery times for delivery trains; both are
#: non-decreasing.  ``seqs`` are the virtual event sequence numbers --
#: strictly increasing within a train -- that stand in for the event
#: engine's scheduling order.
_T_STATE = 0
_T_PATH = 1
_T_HOP = 2
_T_TIMES = 3
_T_SEQS = 4
_T_SIZES = 5
_T_SEGS = 6
_T_CREATED = 7
_T_QUEUE = 8
_T_PIDS = 9
_T_PACKETS = 10

#: Per-directed-link context record layout: epoch-guarded live link
#: properties (slots 0-3) ahead of the stable cached objects.
_C_EPOCH = 0
_C_CAPACITY = 1
_C_PROPAGATION = 2
_C_PHY = 3
_C_PORT = 4
_C_STATS = 5
_C_OCCUPANCY_EST = 6
_C_FWD = 7
_C_BUFFER = 8
_C_ECN_BITS = 9
_C_FINITE = 10
_C_SWITCHING = 11

#: Minimum train length for the vectorised fast path; below this the
#: numpy array set-up costs more than the scalar loop it replaces.
_VECTOR_MIN_SEGMENTS = 8


class _Path(list):
    """A route with a per-hop slot for the resolved link context.

    Train tuples reference the path object itself, so the chain of context
    records travels with it and a hop's link lookup amortises to a single
    list index plus an epoch compare.  ``reroute`` installs a fresh
    ``_Path`` (in-flight trains keep the old object, matching the event
    engine's snapshot semantics), and context records are refreshed in
    place on epoch change so cached references never go stale.
    """

    __slots__ = ("ctx",)

    def __init__(self, nodes) -> None:
        super().__init__(nodes)
        self.ctx: List[Optional[list]] = [None] * (len(self) - 1 or 1)


def _suffix(train: tuple, i: int) -> tuple:
    """The unprocessed tail of a train, keeping original times and seqs."""
    packets = train[_T_PACKETS]
    return (
        train[_T_STATE], train[_T_PATH], train[_T_HOP],
        train[_T_TIMES][i:], train[_T_SEQS][i:], train[_T_SIZES][i:],
        train[_T_SEGS][i:], train[_T_CREATED][i:], train[_T_QUEUE][i:],
        train[_T_PIDS][i:], packets[i:] if packets is not None else None,
    )


def fifo_departure_chain(ready, ser, busy0):
    """Departure chain of a FIFO run, by the event engine's operation order.

    ``ready[i]`` is segment *i*'s head-available instant at the port
    (arrival plus switching latency beyond hop 0), ``ser[i]`` its
    serialization time, and *busy0* the port's drain deadline before the
    run.  Returns ``(acc, queueing, start_tx, dep)``: ``acc`` is the
    running drain deadline -- ``np.add.accumulate`` is a sequential left
    fold, identical to the scalar busy-until chain -- ``queueing`` each
    segment's wait against it, ``start_tx`` its transmit start, and
    ``dep`` its departure computed by the scalar operation order
    ``(ready + (busy - ready)) + ser``.  Both ``dep`` and ``acc`` are
    returned because the two operation orders are not bitwise-guaranteed
    to agree: the caller commits only the prefix on which they do.  The
    declared parity pair with ``PacketLevelNetwork._forward`` (D003,
    ``src/repro/lint/parity_pairs.py``) pins this helper to the event
    engine's per-hop float pipeline.
    """
    n = ser.shape[0]
    r0 = ready[0]
    acc = np.empty(n + 1)
    acc[0] = busy0 if busy0 > r0 else r0
    acc[1:] = ser
    np.add.accumulate(acc, out=acc)
    queueing = acc[:n] - ready
    start_tx = ready + queueing
    dep = start_tx + ser
    return acc, queueing, start_tx, dep


class BatchedPacketCore:
    """Fused calendar + forwarding plane + transport for ``engine="batched"``.

    Exposes the union of the three surfaces
    :class:`~repro.fabric.packetsim.PacketBackend` consumes -- the
    simulator clock/run control, the network's ports and conservation
    counters, and the transport's flow bookkeeping -- so the backend can
    point ``simulator``/``network``/``transport`` at one object.

    Parameters mirror the event-driven trio; ``port_factory`` and
    ``ecn_threshold`` are injected by the backend so this module stays
    fabric-agnostic (the simulation kernel never imports ``repro.fabric``).
    """

    def __init__(
        self,
        fabric,
        flows: Sequence[Flow],
        route_fn: Callable[[Flow], Sequence[str]],
        config: Optional[TransportConfig] = None,
        trace: Optional[TraceRecorder] = None,
        ecn_threshold: float = 0.65,
        record_hops: bool = False,
        retain_packets: bool = False,
        port_factory=None,
    ) -> None:
        if not 0.0 < ecn_threshold <= 1.0:
            raise ValueError(f"ecn_threshold must be in (0, 1], got {ecn_threshold!r}")
        if port_factory is None:
            raise TypeError("port_factory is required (the backend injects PortState)")
        self.fabric = fabric
        self.trace = trace if trace is not None else NullTrace()
        self.config = config if config is not None else TransportConfig()
        self.route_fn = route_fn
        self.ecn_threshold = ecn_threshold
        self.record_hops = record_hops
        self.retain_packets = retain_packets
        self._port_factory = port_factory
        #: Rich mode materialises Packet/HopRecord objects per segment --
        #: needed only when callers want retained packets, hop records or
        #: a real trace; the scale path never allocates them.
        self._rich = bool(
            record_hops or retain_packets or not isinstance(self.trace, NullTrace)
        )

        # -- calendar -------------------------------------------------- #
        self._now = 0.0
        self._heap: list = []
        self._seq = 0
        self._events_executed = 0
        #: Mutation epoch: bumped whenever external code may have touched
        #: the fabric (calendar callbacks, run()/step() entry from outside,
        #: facade mutations).  Link-property caches are keyed on it.
        self._epoch = 0
        self._ctx: Dict[DirectedKey, list] = {}

        # -- forwarding plane (PacketLevelNetwork surface) ------------- #
        self.disabled_links: Set[DirectedKey] = set()
        self._ports: Dict[DirectedKey, object] = {}
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []
        self.queueing_samples: List[float] = []
        #: Optional ``(time, size_bits)`` append-logs, parallel to the
        #: ``queueing_samples`` / ``retransmitted_bits`` accumulation
        #: order.  ``None`` (the default) disables them; the sharded
        #: coordinator enables them on its member cores so the global
        #: left folds can be replayed in merged event order.
        self.delivery_log: Optional[List[Tuple[float, float]]] = None
        self.retransmit_log: Optional[List[Tuple[float, float]]] = None
        self.packets_injected = 0
        self.packets_entered = 0
        self.in_flight = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.bits_delivered = 0.0
        #: Optional external hooks; called with Packet objects, so they
        #: fire only in rich mode (the transport logic is fused in-line
        #: here, unlike the event path where it installs these hooks).
        self.on_delivered: Optional[Callable[[Packet], None]] = None
        self.on_dropped: Optional[Callable[[Packet], None]] = None

        # -- transport (PacketTransport surface) ----------------------- #
        self._packet_counter = 0
        self.retransmissions = 0
        self.retransmitted_bits = 0.0
        self.segments_abandoned = 0
        self._states: Dict[int, FlowTransportState] = {}
        self._unfinished = 0
        mtu = self.config.mtu_bits
        for flow in flows:
            total, last = segment_layout(flow.size_bits, mtu)
            path = _Path(route_fn(flow))
            if path[0] != flow.src or path[-1] != flow.dst:
                raise ValueError(
                    f"path {path} does not connect {flow.src!r} to {flow.dst!r}"
                )
            state = FlowTransportState(
                flow=flow,
                path=path,
                total_segments=total,
                segment_bits=mtu,
                last_segment_bits=last,
            )
            if flow.flow_id in self._states:
                raise ValueError(f"duplicate flow id {flow.flow_id}")
            self._states[flow.flow_id] = state
            self._unfinished += 1
            self._schedule_internal(flow.start_time, self._start_flow, state)

    # ------------------------------------------------------------------ #
    # Simulator surface: clock, scheduling, run control
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Calendar entries processed (trains count once per pop)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Entries currently on the calendar."""
        return len(self._heap)

    def touch(self) -> None:
        """Invalidate link-property caches: external code may have mutated
        the fabric.  The backend calls this on every ``run()`` entry."""
        self._epoch += 1

    def peek(self) -> Optional[float]:
        """Time of the next calendar entry, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def schedule(self, delay: float, fn: Callable, *args, priority: int = 0,
                 **kwargs) -> None:
        """Schedule *fn* ``delay`` seconds from now (controller re-arms)."""
        return self.schedule_at(self._now + delay, fn, *args,
                                priority=priority, **kwargs)

    def schedule_at(self, time: float, fn: Callable, *args, priority: int = 0,
                    **kwargs) -> None:
        """Schedule a callback at absolute *time*.

        Packet work never uses priorities; a non-zero priority would need
        the event engine's three-way tie-break, so it is rejected rather
        than silently reordered.
        """
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        if priority != 0:
            raise SimulationError(
                "the batched packet engine only supports priority-0 events; "
                "use engine='event' for prioritised scheduling"
            )
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: now={self._now:.9f}, "
                f"requested={time:.9f}"
            )
        seq = self._seq
        self._seq += 1
        heappush(self._heap, (float(time), seq, _CALL, fn, args, kwargs))

    def _schedule_internal(self, time: float, fn: Callable, *args) -> None:
        """Schedule a transport-internal callback (no epoch bump on run)."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: now={self._now:.9f}, "
                f"requested={time:.9f}"
            )
        seq = self._seq
        self._seq += 1
        heappush(self._heap, (float(time), seq, _ICALL, fn, args, {}))

    def step(self, until: Optional[float] = None) -> bool:
        """Process the single next calendar entry.

        A train whose later segments fall past *until* -- or would order
        after another calendar entry -- is split: the processed prefix's
        effects are applied, the rest re-enqueued.  Returns ``True`` if an
        entry ran.
        """
        heap = self._heap
        if not heap:
            return False
        entry = heappop(heap)
        self._events_executed += 1
        kind = entry[2]
        if kind == _TRAIN:
            self._process_train(entry[3], until)
        elif kind == _DELIVER:
            self._process_deliveries(entry[3], until)
        else:
            self._now = entry[0]
            entry[3](*entry[4], **entry[5])
            if kind == _CALL:
                # The callback may have mutated the fabric (controller
                # ticks, failure plans): re-read link properties next use.
                self._epoch += 1
        return True

    def drive(self, until: Optional[float], max_events: int) -> bool:
        """The backend's run loop, fused: pop and dispatch entries until
        the calendar drains, *until* passes, the transport finishes (only
        when ``until is None``), or *max_events* entries have executed.

        Returns ``True`` if the event budget was exhausted (truncation).
        Check order mirrors ``PacketBackend.run``'s event-engine loop.
        External code may have mutated the fabric since the last drive, so
        link-property caches are dropped on entry.
        """
        self._epoch += 1
        heap = self._heap
        process_train = self._process_train
        process_deliveries = self._process_deliveries
        executed = self._events_executed
        bounded = until is not None
        try:
            while heap:
                if bounded:
                    if heap[0][0] > until:
                        break
                elif self._unfinished == 0:
                    break
                if executed >= max_events:
                    return True
                entry = heappop(heap)
                executed += 1
                kind = entry[2]
                if kind == _TRAIN:
                    process_train(entry[3], until)
                elif kind == _DELIVER:
                    process_deliveries(entry[3], until)
                else:
                    self._now = entry[0]
                    entry[3](*entry[4], **entry[5])
                    if kind == _CALL:
                        self._epoch += 1
            return False
        finally:
            self._events_executed = executed

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run entries until the calendar drains or *until* is reached.

        Mirrors :meth:`repro.sim.engine.Simulator.run`, including the
        clock advancing to *until* even if the calendar drained earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until!r}: clock already at {self._now!r}"
            )
        self.touch()
        executed = 0
        heap = self._heap
        while True:
            if max_events is not None and executed >= max_events:
                break
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                break
            self.step(until)
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until the calendar is empty (bounded by *max_events*)."""
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Network surface: ports, counters
    # ------------------------------------------------------------------ #
    def _port(self, key: DirectedKey):
        port = self._ports.get(key)
        if port is None:
            a, b = key
            link = self.fabric.topology.link_between(a, b)
            port = self._port_factory(
                buffer_bits=self.fabric.config.switch_model.buffer_bits,
                capacity_bps=link.capacity_bps,
            )
            self._ports[key] = port
        return port

    def _link_ctx(self, key: DirectedKey) -> list:
        """The per-directed-link context record, live-refreshed per epoch.

        Slots 0-3 mirror the event engine's per-forward live reads (the
        cache is only reused while no calendar callback has run and no
        facade mutation has happened -- nothing else can mutate links).
        The remaining slots hold objects that are stable for the life of
        the run: the port, its statistics stream and occupancy estimator
        (``Fabric.stats_for`` creates once and never replaces), buffer
        thresholds, and the per-size switching-latency memo.
        """
        ctx = self._ctx.get(key)
        if ctx is None:
            port = self._port(key)
            stats = self.fabric.stats_for(key[0], key[1])
            link = self.fabric.topology.link_between(key[0], key[1])
            buffer_bits = port.buffer_bits
            ctx = [
                self._epoch,
                link.capacity_bps,
                link.propagation_delay,
                link.phy_latency,
                port,
                stats,
                stats.queue_occupancy,
                None,  # forwarding-latency fn, resolved on first hop>0 use
                buffer_bits,
                self.ecn_threshold * buffer_bits,
                math.isfinite(buffer_bits),
                {},  # per-size switching latency memo
            ]
            self._ctx[key] = ctx
        elif ctx[0] != self._epoch:
            link = self.fabric.topology.link_between(key[0], key[1])
            ctx[_C_EPOCH] = self._epoch
            ctx[_C_CAPACITY] = link.capacity_bps
            ctx[_C_PROPAGATION] = link.propagation_delay
            ctx[_C_PHY] = link.phy_latency
        return ctx

    def sync_port_capacity(self, key: DirectedKey, capacity_bps: float) -> None:
        """Eagerly reshape a port's drain deadline for a capacity change.

        Identical to
        :meth:`repro.fabric.packetsim.PacketLevelNetwork.sync_port_capacity`;
        also invalidates the link-property cache so the next forward
        re-reads the live fabric.
        """
        port = self._ports.get(key)
        if port is None:
            a, b = key
            if not self.fabric.topology.has_link(a, b):
                return
            port = self._port(key)
        now = self._now
        remaining = port.busy_until - now
        if remaining > 0.0 and port.capacity_bps > 0.0 and capacity_bps > 0.0:
            port.busy_until = now + remaining * (port.capacity_bps / capacity_bps)
        port.capacity_bps = capacity_bps
        self._epoch += 1

    def port_drain_time(self, key: DirectedKey) -> float:
        """Seconds until the port's accepted backlog has fully drained."""
        port = self._ports.get(key)
        if port is None:
            return 0.0
        return max(0.0, port.busy_until - self._now)

    def port_stats(self) -> Dict[DirectedKey, object]:
        """Frozen per-port statistics snapshot (copies, like the event path)."""
        return {key: _dataclass_replace(port) for key, port in self._ports.items()}

    def latencies(self) -> List[float]:
        """End-to-end latencies of retained delivered packets (rich mode)."""
        return [p.latency for p in self.delivered if p.latency is not None]

    def delivery_fraction(self) -> float:
        """Delivered packets over delivered plus dropped."""
        total = self.delivered_count + self.dropped_count
        if total == 0:
            return 0.0
        return self.delivered_count / total

    # ------------------------------------------------------------------ #
    # Transport surface: flow bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """Every flow has either fully delivered or been abandoned."""
        return self._unfinished == 0

    def _settle(self, state: FlowTransportState) -> None:
        if not state.settled and state.finished:
            state.settled = True
            self._unfinished -= 1

    def state_of(self, flow_id: int) -> FlowTransportState:
        """Transport state of one flow."""
        return self._states[flow_id]

    def active_flows(self) -> List[Flow]:
        """Flows that have started and are not yet finished."""
        return [
            state.flow
            for state in self._states.values()
            if state.started and not state.finished
        ]

    @property
    def unstarted_count(self) -> int:
        """Flows whose start event has not fired yet."""
        return sum(1 for state in self._states.values() if not state.started)

    def pending_demand_bits(self) -> float:
        """Undelivered bits of the started, unfinished flows."""
        return sum(
            state.flow.size_bits - state.delivered_bits
            for state in self._states.values()
            if state.started and not state.finished
        )

    def reroute(self, flow_id: int, path: Sequence[str]) -> None:
        """Point the remaining segments of a flow at a new path."""
        state = self._states[flow_id]
        path = _Path(path)
        if len(path) < 2:
            raise ValueError("a path needs at least a source and a destination")
        if path[0] != state.flow.src or path[-1] != state.flow.dst:
            raise ValueError(
                f"path {path} does not connect {state.flow.src!r} "
                f"to {state.flow.dst!r}"
            )
        state.path = path

    def summary(self) -> Dict[str, float]:
        """Headline transport counters."""
        return {
            "packets_sent": float(self._packet_counter),
            "retransmissions": float(self.retransmissions),
            "retransmitted_bits": self.retransmitted_bits,
            "segments_abandoned": float(self.segments_abandoned),
        }

    # ------------------------------------------------------------------ #
    # Injection machinery
    # ------------------------------------------------------------------ #
    def _start_flow(self, state: FlowTransportState) -> None:
        state.started = True
        state.flow.activate(self._now)
        self._fill_window(state)

    def _fill_window(self, state: FlowTransportState) -> None:
        """Inject fresh segments as one train until the window is full."""
        if state.abandoned:
            return
        window = self.config.window_packets
        in_window = state.outstanding + state.pending_retransmits
        seg = state.next_segment
        total = state.total_segments
        if in_window >= window or seg >= total:
            return
        if window - in_window == 1 or total - seg == 1:
            if not self._rich:
                # Steady-state refill: each delivery frees exactly one
                # window slot, so inject the one fresh segment without the
                # builder lists.
                state.next_segment = seg + 1
                size = (state.last_segment_bits if seg == total - 1
                        else state.segment_bits)
                pid = self._packet_counter
                self._packet_counter += 1
                state.outstanding += 1
                self.packets_injected += 1
                sq = self._seq
                self._seq += 1
                now = self._now
                heappush(self._heap, (now, sq, _TRAIN, (
                    state, state.path, 0, [now], [sq], [size], [seg],
                    [now], [0.0], [pid], None)))
                return
        segs: List[int] = []
        sizes: List[float] = []
        pids: List[int] = []
        seqs: List[int] = []
        packets: Optional[List[Packet]] = [] if self._rich else None
        while state.in_window < window and state.next_segment < state.total_segments:
            self._append_injection(state, state.next_segment,
                                   segs, sizes, pids, seqs, packets)
            state.next_segment += 1
        self._push_injection(state, segs, sizes, pids, seqs, packets)

    def _append_injection(self, state, seg, segs, sizes, pids, seqs, packets):
        """Mirror of ``PacketTransport._inject_segment`` + ``inject``."""
        flow = state.flow
        size = state.size_of(seg)
        pid = self._packet_counter
        self._packet_counter += 1
        if packets is not None:
            packet = Packet(
                src=flow.src,
                dst=flow.dst,
                size_bits=size,
                created_at=self._now,
                flow_id=flow.flow_id,
                packet_id=pid,
            )
            packet.metadata["segment"] = seg
            packets.append(packet)
        state.outstanding += 1
        self.packets_injected += 1
        seqs.append(self._seq)
        self._seq += 1
        segs.append(seg)
        sizes.append(size)
        pids.append(pid)

    def _push_injection(self, state, segs, sizes, pids, seqs, packets):
        now = self._now
        n = len(segs)
        # ``state.path`` is shared, not copied: ``reroute`` rebinds the
        # attribute to a fresh list, so in-flight trains keep the path
        # they were injected with -- the event engine's semantics.
        train = (
            state, state.path, 0,
            [now] * n, seqs, sizes, segs, [now] * n, [0.0] * n, pids, packets,
        )
        heappush(self._heap, (now, seqs[0], _TRAIN, train))

    def _retransmit(self, state: FlowTransportState, seg: int) -> None:
        state.pending_retransmits -= 1
        if state.abandoned:
            self._settle(state)
            return
        self.retransmissions += 1
        size = state.size_of(seg)
        self.retransmitted_bits += size
        if self.retransmit_log is not None:
            self.retransmit_log.append((self._now, size))
        segs: List[int] = []
        sizes: List[float] = []
        pids: List[int] = []
        seqs: List[int] = []
        packets: Optional[List[Packet]] = [] if self._rich else None
        self._append_injection(state, seg, segs, sizes, pids, seqs, packets)
        self._push_injection(state, segs, sizes, pids, seqs, packets)

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #
    def _process_train(self, train: tuple, until: Optional[float]) -> None:
        """Advance one forward train at its port, splitting on interleave.

        Segments are processed while nothing orders before them: the next
        heap entry, the *until* horizon, and the train's own continuation
        head (whose virtual seqs are all larger, so it goes first exactly
        when its time is strictly smaller).  Port counters and the EWMA
        occupancy stream are updated by the same operation sequence as
        ``PacketLevelNetwork._forward``, with hot fields held in locals
        and flushed on exit.
        """
        path = train[_T_PATH]
        hop = train[_T_HOP]
        ctx_chain = path.ctx
        ctx = ctx_chain[hop]
        if ctx is None or ctx[0] != self._epoch:
            ctx = self._link_ctx((path[hop], path[hop + 1]))
            ctx_chain[hop] = ctx
        capacity = ctx[_C_CAPACITY]
        propagation = ctx[_C_PROPAGATION]
        phy = ctx[_C_PHY]
        port = ctx[_C_PORT]
        stats = ctx[_C_STATS]
        est = ctx[_C_OCCUPANCY_EST]
        buffer_bits = ctx[_C_BUFFER]
        ecn_bits = ctx[_C_ECN_BITS]
        buffer_finite = ctx[_C_FINITE]
        switch_cache = ctx[_C_SWITCHING]
        dl = self.disabled_links
        times = train[_T_TIMES]
        seqs = train[_T_SEQS]
        sizes = train[_T_SIZES]
        queue = train[_T_QUEUE]
        packets = train[_T_PACKETS]
        n = len(times)
        heap = self._heap
        last_hop = hop + 2 == len(path)
        forwardable = capacity > 0.0 and (
            not dl or (path[hop], path[hop + 1]) not in dl)

        # The head segment is processed unconditionally in this pop (it was
        # the calendar minimum), so the event engine's lazy capacity-rescale
        # -- which it would run at this segment's time -- can be hoisted;
        # afterwards ``port.capacity_bps == capacity`` for the whole pop.
        if forwardable and capacity != port.capacity_bps:
            t0 = times[0]
            remaining = port.busy_until - t0
            if remaining > 0.0 and port.capacity_bps > 0.0:
                port.busy_until = t0 + remaining * (port.capacity_bps / capacity)
            port.capacity_bps = capacity

        if hop:
            fwd_latency = ctx[_C_FWD]
            if fwd_latency is None:
                fwd_latency = self.fabric.switch(path[hop]).forwarding_latency
                ctx[_C_FWD] = fwd_latency
        else:
            fwd_latency = None

        if n == 1 and not self._rich:
            # Single-segment fast path: trains fragment heavily under high
            # flow concurrency (global order interleaves them), so most
            # pops carry one segment.  Skip the builder lists and the
            # per-segment ordering checks (a popped head IS the calendar
            # minimum, so only the horizon can order before it), and keep
            # advancing the segment hop over hop -- through its final
            # delivery -- for as long as each continuation is still the
            # calendar minimum, eliding the heap round trips the event
            # engine pays per hop.  Chaining is order-exact: the inline
            # continuation runs precisely when the calendar would have
            # popped it next.
            t = times[0]
            sq = seqs[0]
            if until is not None and t > until:
                heappush(heap, (t, sq, _TRAIN, train))
                return
            state = train[_T_STATE]
            size = sizes[0]
            q_acc = queue[0]
            while True:
                self._now = t
                if hop == 0:
                    self.packets_entered += 1
                    self.in_flight += 1
                if not forwardable:
                    here = path[hop]
                    nxt = path[hop + 1]
                    if capacity <= 0.0:
                        reason = f"link {here}->{nxt} has no active capacity"
                    else:
                        reason = f"link {here}->{nxt} is disabled"
                    self._drop_segment(train, 0, port, stats, here, nxt, reason)
                    return
                if hop:
                    switching = switch_cache.get(size)
                    if switching is None:
                        switching = fwd_latency(size)
                        switch_cache[size] = switching
                    ready = t + switching
                else:
                    ready = t
                queueing = port.busy_until - ready
                if queueing <= 0.0:
                    queueing = 0.0
                backlog = queueing * capacity
                if backlog > port.max_backlog_bits:
                    port.max_backlog_bits = backlog
                if backlog + size > buffer_bits:
                    here = path[hop]
                    nxt = path[hop + 1]
                    self._drop_segment(train, 0, port, stats, here, nxt,
                                       f"buffer overflow at {here}->{nxt}")
                    return
                if backlog > ecn_bits:
                    port.ecn_marks += 1
                serialization = size / capacity
                start_tx = ready + queueing
                port.busy_until = start_tx + serialization
                port.packets_sent += 1
                port.bits_sent += size
                port.queueing_seconds_total += queueing
                q_acc += queueing
                occupancy = backlog / buffer_bits if buffer_finite else 0.0
                est.samples += 1
                est.last_sample = occupancy
                emin = est.minimum
                if emin is None or occupancy < emin:
                    est.minimum = occupancy
                emax = est.maximum
                if emax is None or occupancy > emax:
                    est.maximum = occupancy
                alpha = est.alpha
                value = est._value
                est._value = (occupancy if value is None
                              else alpha * occupancy + (1 - alpha) * value)
                stats.packets += 1
                sq = self._seq
                self._seq += 1
                if last_hop:
                    t = start_tx + serialization + propagation + phy
                else:
                    t = start_tx + propagation + phy
                if until is not None and t > until:
                    chain = False
                elif heap:
                    head = heap[0]
                    ht = head[0]
                    chain = t < ht or (t == ht and sq < head[1])
                else:
                    chain = True
                if last_hop:
                    if not chain:
                        # Re-push in place: the popped train's lists are
                        # exclusively ours, so reuse them for the
                        # continuation instead of allocating fresh ones.
                        times[0] = t
                        seqs[0] = sq
                        queue[0] = q_acc
                        heappush(heap, (t, sq, _DELIVER, (
                            state, path, -1, times, seqs, sizes,
                            train[_T_SEGS], train[_T_CREATED], queue,
                            train[_T_PIDS], None)))
                        return
                    # Deliver inline: the delivery is the next event anyway.
                    self._now = t
                    self.delivered_count += 1
                    self.in_flight -= 1
                    self.bits_delivered += size
                    self.queueing_samples.append(q_acc)
                    if self.delivery_log is not None:
                        self.delivery_log.append((t, size))
                    flow = state.flow
                    state.outstanding -= 1
                    state.delivered_segments += 1
                    state.delivered_bits += size
                    flow.sync_remaining(flow.size_bits - state.delivered_bits)
                    if state.delivered_segments >= state.total_segments:
                        flow.complete(t)
                    else:
                        self._fill_window(state)
                    self._settle(state)
                    return
                if not chain:
                    times[0] = t
                    seqs[0] = sq
                    queue[0] = q_acc
                    heappush(heap, (t, sq, _TRAIN, (
                        state, path, hop + 1, times, seqs, sizes,
                        train[_T_SEGS], train[_T_CREATED], queue,
                        train[_T_PIDS], None)))
                    return
                # Advance to the next hop in place.
                hop += 1
                ctx = ctx_chain[hop]
                if ctx is None or ctx[0] != self._epoch:
                    ctx = self._link_ctx((path[hop], path[hop + 1]))
                    ctx_chain[hop] = ctx
                capacity = ctx[_C_CAPACITY]
                propagation = ctx[_C_PROPAGATION]
                phy = ctx[_C_PHY]
                port = ctx[_C_PORT]
                stats = ctx[_C_STATS]
                est = ctx[_C_OCCUPANCY_EST]
                buffer_bits = ctx[_C_BUFFER]
                ecn_bits = ctx[_C_ECN_BITS]
                buffer_finite = ctx[_C_FINITE]
                switch_cache = ctx[_C_SWITCHING]
                forwardable = capacity > 0.0 and (
                    not dl or (path[hop], path[hop + 1]) not in dl)
                last_hop = hop + 2 == len(path)
                if forwardable and capacity != port.capacity_bps:
                    remaining = port.busy_until - t
                    if remaining > 0.0 and port.capacity_bps > 0.0:
                        port.busy_until = (
                            t + remaining * (port.capacity_bps / capacity)
                        )
                    port.capacity_bps = capacity
                fwd_latency = ctx[_C_FWD]
                if fwd_latency is None:
                    fwd_latency = (
                        self.fabric.switch(path[hop]).forwarding_latency)
                    ctx[_C_FWD] = fwd_latency

        # Continuation builder: where the surviving segments go next.
        here = path[hop]
        nxt = path[hop + 1]
        c_times: List[float] = []
        c_seqs: List[int] = []
        c_queue: List[float] = []
        c_keep: List[int] = []
        c_packets: Optional[List[Packet]] = [] if packets is not None else None

        start = 0
        if n >= _VECTOR_MIN_SEGMENTS and forwardable and not self._rich:
            start = self._vector_advance(
                train, ctx, until, last_hop, fwd_latency,
                c_times, c_seqs, c_queue, c_keep,
            )
            if start == n:
                self._finish_train(train, last_hop, c_times, c_seqs,
                                   c_queue, c_keep, c_packets, until)
                return

        # Hot port fields in locals; flushed after the loop.
        busy = port.busy_until
        sent = 0
        bits_sent = port.bits_sent
        queueing_total = port.queueing_seconds_total
        max_backlog = port.max_backlog_bits
        marks = 0
        entered = 0
        alpha = est.alpha
        one_minus_alpha = 1 - alpha

        i = start
        while i < n:
            t = times[i]
            sq = seqs[i]
            if until is not None and t > until:
                break
            if i and heap:
                # (The popped head -- i == 0 -- was the calendar minimum.)
                head = heap[0]
                ht = head[0]
                if ht < t or (ht == t and head[1] < sq):
                    break
            if c_times and c_times[0] < t:
                break
            self._now = t
            if hop == 0:
                entered += 1
            if not forwardable:
                # Flush busy-state around the drop so its side effects see
                # consistent port counters (it touches the drop fields only,
                # but retransmit scheduling reads the clock).
                if capacity <= 0.0:
                    reason = f"link {here}->{nxt} has no active capacity"
                else:
                    reason = f"link {here}->{nxt} is disabled"
                self._drop_segment(train, i, port, stats, here, nxt, reason)
                i += 1
                continue
            size = sizes[i]
            if hop:
                switching = switch_cache.get(size)
                if switching is None:
                    switching = fwd_latency(size)
                    switch_cache[size] = switching
                ready = t + switching
            else:
                switching = 0.0
                ready = t
            queueing = busy - ready
            if queueing <= 0.0:
                queueing = 0.0
            backlog = queueing * capacity
            if backlog > max_backlog:
                max_backlog = backlog
            if backlog + size > buffer_bits:
                self._drop_segment(
                    train, i, port, stats, here, nxt,
                    f"buffer overflow at {here}->{nxt}",
                )
                i += 1
                continue
            if backlog > ecn_bits:
                marks += 1
            serialization = size / capacity
            start_tx = ready + queueing
            busy = start_tx + serialization
            sent += 1
            bits_sent += size
            queueing_total += queueing
            q_acc = queue[i] + queueing
            queue[i] = q_acc
            occupancy = backlog / buffer_bits if buffer_finite else 0.0
            # Inlined ``stats.observe(packets=1, queue_occupancy=occupancy)``
            # -- operation for operation, including the EWMA fold.
            est.samples += 1
            est.last_sample = occupancy
            emin = est.minimum
            if emin is None or occupancy < emin:
                est.minimum = occupancy
            emax = est.maximum
            if emax is None or occupancy > emax:
                est.maximum = occupancy
            value = est._value
            est._value = (
                occupancy if value is None
                else alpha * occupancy + one_minus_alpha * value
            )
            stats.packets += 1
            if packets is not None:
                packet = packets[i]
                packet.queueing_seconds += queueing
                if self.record_hops:
                    packet.record_hop(HopRecord(
                        element=here,
                        arrival=t,
                        departure=start_tx,
                        queueing=queueing,
                        switching=switching,
                        serialization=serialization if hop == 0 else 0.0,
                        propagation=propagation + phy,
                    ))
                c_packets.append(packet)
            sq_new = self._seq
            self._seq += 1
            if last_hop:
                c_times.append(start_tx + serialization + propagation + phy)
            else:
                c_times.append(start_tx + propagation + phy)
            c_seqs.append(sq_new)
            c_queue.append(q_acc)
            c_keep.append(i)
            i += 1

        port.busy_until = busy
        port.packets_sent += sent
        port.bits_sent = bits_sent
        port.queueing_seconds_total = queueing_total
        port.max_backlog_bits = max_backlog
        if marks:
            port.ecn_marks += marks
        if entered:
            self.packets_entered += entered
            self.in_flight += entered
        if i < n:
            # Interleave or horizon: re-enqueue the tail under its original
            # keys, plus whatever continuation has accumulated so far.
            tail = _suffix(train, i)
            heappush(heap, (tail[_T_TIMES][0], tail[_T_SEQS][0], _TRAIN, tail))
        self._finish_train(train, last_hop, c_times, c_seqs, c_queue,
                           c_keep, c_packets, until)

    def _finish_train(self, train, last_hop, c_times, c_seqs, c_queue,
                      c_keep, c_packets, until) -> None:
        """Dispatch the continuation train built for the processed prefix.

        ``c_keep`` indexes the surviving segments (drops fall out), used to
        gather their sizes/segment-ids/creation times from the parent.  If
        the continuation would be the very next calendar pop anyway --
        nothing on the heap orders before it (the caller has already
        re-enqueued any unprocessed tail) and the horizon reaches it --
        it is processed inline, eliding the heap round trip; otherwise it
        is enqueued.
        """
        if not c_times:
            return
        sizes = train[_T_SIZES]
        segs = train[_T_SEGS]
        created = train[_T_CREATED]
        pids = train[_T_PIDS]
        if len(c_keep) == len(sizes):
            c_sizes = sizes
            c_segs = segs
            c_created = created
            c_pids = pids
        else:
            c_sizes = [sizes[j] for j in c_keep]
            c_segs = [segs[j] for j in c_keep]
            c_created = [created[j] for j in c_keep]
            c_pids = [pids[j] for j in c_keep]
        cont = (
            train[_T_STATE], train[_T_PATH],
            -1 if last_hop else train[_T_HOP] + 1,
            c_times, c_seqs, c_sizes, c_segs, c_created, c_queue, c_pids,
            c_packets,
        )
        c0 = c_times[0]
        s0 = c_seqs[0]
        if until is None or c0 <= until:
            heap = self._heap
            if not heap or c0 < heap[0][0] or (c0 == heap[0][0]
                                               and s0 < heap[0][1]):
                # Recursion is bounded by the path length: each inline
                # level advances the continuation one hop (or delivers).
                if last_hop:
                    self._process_deliveries(cont, until)
                else:
                    self._process_train(cont, until)
                return
        heappush(self._heap, (c0, s0, _DELIVER if last_hop else _TRAIN, cont))

    def _vector_advance(self, train, ctx, until, last_hop, fwd_latency,
                        c_times, c_seqs, c_queue, c_keep) -> int:
        """Vectorised FIFO advancement of a train's maximal drop-free prefix.

        The departure chain of a backlogged FIFO run is one sequential
        left fold (:func:`fifo_departure_chain`), so a whole run advances
        in a handful of vector ops.  The committed prefix stops at the
        first element where the scalar loop would do anything other than
        chain: the *until* horizon, a heap entry or the train's own first
        continuation ordering before a segment, an idle gap (the scalar
        clamp re-seeds the chain there), a buffer overflow (the scalar
        loop owns the drop), or a bitwise mismatch between the fold and
        the scalar operation order ``(ready + (busy - ready)) + ser``
        (not guaranteed to reproduce ``busy + ser``; rather than assume
        it, both are computed and compared).  Effects for the committed
        prefix are applied in event order; left folds stay valid under
        truncation, so any prefix of the chain is exact.  Returns the
        index the scalar loop resumes from (0 = nothing committed).

        This generalises the original hop-0, same-instant, all-or-nothing
        pass to any hop (``ready`` picks up the per-size switching
        latency), monotone unequal arrival times, and partial prefixes.
        """
        times = train[_T_TIMES]
        n = len(times)
        if until is not None:
            if times[0] > until:
                return 0
            if times[n - 1] > until:
                n = bisect_right(times, until)
        seqs = train[_T_SEQS]
        heap = self._heap
        if heap:
            head = heap[0]
            ht = head[0]
            if ht < times[n - 1] or (ht == times[n - 1]
                                     and head[1] < seqs[n - 1]):
                # Keep only the segments that order before the heap head
                # (i == 0, the popped calendar minimum, is exempt).
                hsq = head[1]
                lo = bisect_left(times, ht, 1, n)
                while lo < n and times[lo] == ht and seqs[lo] < hsq:
                    lo += 1
                n = lo
        if n < _VECTOR_MIN_SEGMENTS:
            return 0
        hop = train[_T_HOP]
        capacity = ctx[_C_CAPACITY]
        sizes = train[_T_SIZES]
        szs = np.asarray(sizes[:n])
        tarr = np.asarray(times[:n])
        if hop:
            switch_cache = ctx[_C_SWITCHING]
            sw = []
            for j in range(n):
                size = sizes[j]
                switching = switch_cache.get(size)
                if switching is None:
                    switching = fwd_latency(size)
                    switch_cache[size] = switching
                sw.append(switching)
            ready = tarr + np.asarray(sw)
        else:
            ready = tarr
        port = ctx[_C_PORT]
        ser = szs / capacity
        acc, queueing, start_tx, dep = fifo_departure_chain(
            ready, ser, port.busy_until)
        m = n
        # Idle gap: the scalar loop clamps negative queueing to zero and
        # re-seeds the chain at ``ready``; the fold is invalid from there.
        gaps = np.nonzero(queueing[1:] < 0.0)[0]
        if gaps.size:
            m = int(gaps[0]) + 1
        # First overflow: the scalar loop handles the drop (and the chain
        # changes shape past it).
        buffer_bits = ctx[_C_BUFFER]
        backlog = queueing * capacity
        over = np.nonzero(backlog[:m] + szs[:m] > buffer_bits)[0]
        if over.size:
            m = int(over[0])
            if m == 0:
                return 0
        # Bitwise self-consistency up to the commit point: the fold must
        # reproduce the scalar chain exactly, element for element.
        if m > 1:
            bad = np.nonzero(dep[: m - 1] != acc[1:m])[0]
            if bad.size:
                m = int(bad[0]) + 1
        if last_hop:
            out_times = (dep + ctx[_C_PROPAGATION]) + ctx[_C_PHY]
        else:
            out_times = (start_tx + ctx[_C_PROPAGATION]) + ctx[_C_PHY]
        # The first continuation's virtual seq exceeds every segment seq,
        # so it orders first exactly when its time is strictly smaller --
        # the scalar loop's ``c_times[0] < t`` break.
        out0 = out_times[0]
        if out0 < times[m - 1]:
            m = bisect_right(times, out0, 1, m)

        # Commit the prefix's effects in event order.
        self._now = times[m - 1]
        if hop == 0:
            self.packets_entered += m
            self.in_flight += m
        port.busy_until = float(dep[m - 1])
        port.packets_sent += m
        bits_sent = port.bits_sent
        for j in range(m):
            bits_sent += sizes[j]
        port.bits_sent = bits_sent
        queueing_list = queueing[:m].tolist()
        queueing_total = port.queueing_seconds_total
        for q in queueing_list:
            queueing_total += q
        port.queueing_seconds_total = queueing_total
        peak = float(backlog[:m].max())
        if peak > port.max_backlog_bits:
            port.max_backlog_bits = peak
        ecn_marks = int(np.count_nonzero(backlog[:m] > ctx[_C_ECN_BITS]))
        if ecn_marks:
            port.ecn_marks += ecn_marks
        if ctx[_C_FINITE]:
            occupancies = (backlog[:m] / buffer_bits).tolist()
        else:
            occupancies = [0.0] * m
        # Inlined sequential EWMA fold over the prefix's occupancy samples.
        stats = ctx[_C_STATS]
        est = ctx[_C_OCCUPANCY_EST]
        alpha = est.alpha
        one_minus_alpha = 1 - alpha
        value = est._value
        emin = est.minimum
        emax = est.maximum
        for occupancy in occupancies:
            if emin is None or occupancy < emin:
                emin = occupancy
            if emax is None or occupancy > emax:
                emax = occupancy
            value = (
                occupancy if value is None
                else alpha * occupancy + one_minus_alpha * value
            )
        est.samples += m
        est.last_sample = occupancies[-1]
        est.minimum = emin
        est.maximum = emax
        est._value = value
        stats.packets += m
        seq_base = self._seq
        self._seq += m
        queue = train[_T_QUEUE]
        for j, q in enumerate(queueing_list):
            queue[j] += q
        c_times.extend(out_times[:m].tolist())
        c_seqs.extend(range(seq_base, seq_base + m))
        c_queue.extend(queue[:m])
        c_keep.extend(range(m))
        return m

    def _drop_segment(self, train, i, port, stats, here, nxt, reason) -> None:
        """Mirror of ``PacketLevelNetwork._drop`` + ``_on_dropped`` fused."""
        size = train[_T_SIZES][i]
        state = train[_T_STATE]
        port.packets_dropped += 1
        port.bits_dropped += size
        self.dropped_count += 1
        self.in_flight -= 1
        packet = None
        packets = train[_T_PACKETS]
        if packets is not None:
            packet = packets[i]
            packet.mark_dropped(reason)
            if self.retain_packets:
                self.dropped.append(packet)
        stats.observe(drops=1, packets=1)
        if not isinstance(self.trace, NullTrace):
            self.trace.record(
                self._now,
                "packet_dropped",
                packet_id=train[_T_PIDS][i],
                at=f"{here}->{nxt}",
            )
        if packet is not None and self.on_dropped is not None:
            self.on_dropped(packet)
        # Transport reaction: retransmit with linear backoff, or abandon.
        state.outstanding -= 1
        if state.abandoned:
            self._settle(state)
            return
        seg = train[_T_SEGS][i]
        attempts = state.attempts.get(seg, 0) + 1
        state.attempts[seg] = attempts
        if attempts >= self.config.max_attempts:
            state.abandoned = True
            self.segments_abandoned += 1
            self._settle(state)
            return
        state.pending_retransmits += 1
        delay = attempts * self.config.retransmit_delay
        self._schedule_internal(self._now + delay, self._retransmit, state, seg)

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #
    def _process_deliveries(self, train: tuple, until: Optional[float]) -> None:
        """Deliver a train's segments, refilling the window per epoch.

        Window refills enqueue new injection trains at the delivery
        instant; the heap-head check then naturally splits this train so
        the refill forwards before the next delivery, exactly as the event
        engine interleaves them.
        """
        times = train[_T_TIMES]
        seqs = train[_T_SEQS]
        sizes = train[_T_SIZES]
        queue = train[_T_QUEUE]
        packets = train[_T_PACKETS]
        state = train[_T_STATE]
        flow = state.flow
        n = len(times)
        heap = self._heap
        trace_on = not isinstance(self.trace, NullTrace)
        samples = self.queueing_samples
        if n == 1 and packets is None and not trace_on:
            # Single-delivery fast path (the popped head was the calendar
            # minimum, so only the horizon can order before it).
            t = times[0]
            if until is not None and t > until:
                heappush(heap, (t, seqs[0], _DELIVER, train))
                return
            self._now = t
            size = sizes[0]
            self.delivered_count += 1
            self.in_flight -= 1
            self.bits_delivered += size
            samples.append(queue[0])
            if self.delivery_log is not None:
                self.delivery_log.append((t, size))
            state.outstanding -= 1
            state.delivered_segments += 1
            state.delivered_bits += size
            flow.sync_remaining(flow.size_bits - state.delivered_bits)
            if state.delivered_segments >= state.total_segments:
                flow.complete(t)
            else:
                self._fill_window(state)
            self._settle(state)
            return
        i = 0
        while i < n:
            t = times[i]
            sq = seqs[i]
            if until is not None and t > until:
                break
            if i and heap:
                # (The popped head -- i == 0 -- was the calendar minimum.)
                head = heap[0]
                ht = head[0]
                if ht < t or (ht == t and head[1] < sq):
                    break
            self._now = t
            size = sizes[i]
            packet = None
            if packets is not None:
                packet = packets[i]
                packet.mark_delivered(t)
            self.delivered_count += 1
            self.in_flight -= 1
            self.bits_delivered += size
            samples.append(queue[i])
            if self.delivery_log is not None:
                self.delivery_log.append((t, size))
            if packet is not None and self.retain_packets:
                self.delivered.append(packet)
            if trace_on:
                self.trace.record(
                    t,
                    "packet_delivered",
                    packet_id=train[_T_PIDS][i],
                    src=flow.src,
                    dst=flow.dst,
                    latency=t - train[_T_CREATED][i],
                    hops=len(train[_T_PATH]) - 1,
                )
            if packet is not None and self.on_delivered is not None:
                self.on_delivered(packet)
            # Transport reaction: progress accounting and window refill.
            state.outstanding -= 1
            state.delivered_segments += 1
            state.delivered_bits += size
            flow.sync_remaining(flow.size_bits - state.delivered_bits)
            if state.delivered_segments >= state.total_segments:
                flow.complete(t)
            else:
                self._fill_window(state)
            self._settle(state)
            i += 1
        if i < n:
            tail = _suffix(train, i)
            heappush(heap, (tail[_T_TIMES][0], tail[_T_SEQS][0], _DELIVER, tail))
