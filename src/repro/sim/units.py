"""Unit conventions and conversion helpers.

The simulator uses SI base units internally:

* time in **seconds**,
* data in **bits**,
* rate in **bits per second**,
* power in **watts**,
* distance in **meters**.

The helpers below keep call-sites readable: ``nanoseconds(350)`` is much
harder to get wrong than ``350e-9`` scattered through the code, and the
paper quotes numbers in nanoseconds, microseconds and gigabits per second.
"""

from __future__ import annotations

#: Multiplicative factors for readable literals.
KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0

#: One second expressed in seconds (identity, for symmetry).
SECONDS = 1.0
#: One millisecond in seconds.
MILLISECONDS = 1e-3
#: One microsecond in seconds.
MICROSECONDS = 1e-6
#: One nanosecond in seconds.
NANOSECONDS = 1e-9

#: One gigabit per second in bits per second.
GBPS = GIGA

#: Number of bits in a byte.
BITS_PER_BYTE = 8


def nanoseconds(value: float) -> float:
    """Convert *value* nanoseconds to seconds."""
    return value * NANOSECONDS


def microseconds(value: float) -> float:
    """Convert *value* microseconds to seconds."""
    return value * MICROSECONDS


def milliseconds(value: float) -> float:
    """Convert *value* milliseconds to seconds."""
    return value * MILLISECONDS


def seconds(value: float) -> float:
    """Identity conversion, provided for call-site symmetry."""
    return value * SECONDS


def to_nanoseconds(value_seconds: float) -> float:
    """Convert *value_seconds* (seconds) to nanoseconds."""
    return value_seconds / NANOSECONDS


def to_microseconds(value_seconds: float) -> float:
    """Convert *value_seconds* (seconds) to microseconds."""
    return value_seconds / MICROSECONDS


def to_milliseconds(value_seconds: float) -> float:
    """Convert *value_seconds* (seconds) to milliseconds."""
    return value_seconds / MILLISECONDS


def gbps(value: float) -> float:
    """Convert *value* gigabits per second to bits per second."""
    return value * GBPS


def to_gbps(value_bps: float) -> float:
    """Convert *value_bps* (bits per second) to gigabits per second."""
    return value_bps / GBPS


def bits_from_bytes(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * BITS_PER_BYTE


def bytes_from_bits(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / BITS_PER_BYTE


def kilobytes(value: float) -> float:
    """Convert *value* kilobytes (10^3 bytes) to bits."""
    return bits_from_bytes(value * KILO)


def megabytes(value: float) -> float:
    """Convert *value* megabytes (10^6 bytes) to bits."""
    return bits_from_bytes(value * MEGA)


def gigabytes(value: float) -> float:
    """Convert *value* gigabytes (10^9 bytes) to bits."""
    return bits_from_bytes(value * GIGA)


def serialization_delay(size_bits: float, rate_bps: float) -> float:
    """Time to clock *size_bits* onto a link running at *rate_bps*.

    Raises :class:`ValueError` for non-positive rates because a zero rate
    silently producing ``inf`` hides configuration mistakes.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate_bps must be positive, got {rate_bps!r}")
    if size_bits < 0:
        raise ValueError(f"size_bits must be non-negative, got {size_bits!r}")
    return size_bits / rate_bps
