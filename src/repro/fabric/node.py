"""Node (sled) model.

The paper strips the traditional cpu-board-centric server apart and
re-populates the rack with components sized to the relevant metric -- NVMe
sleds for fast storage, DRAM sleds for caching, compute sleds, accelerators.
Each sled attaches to the fabric through a NIC with an embedded switching
element, so sleds both source/sink traffic and forward transit traffic in
direct-connect topologies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.units import GBPS


class NodeType(enum.Enum):
    """Role of a sled in the disaggregated rack."""

    COMPUTE = "compute"
    NVME_STORAGE = "nvme"
    DRAM = "dram"
    ACCELERATOR = "accelerator"
    SWITCH = "switch"

    @property
    def is_endpoint(self) -> bool:
        """Whether the node sources and sinks application traffic."""
        return self is not NodeType.SWITCH


#: Typical sled power draw (watts) by role, used by rack-level power reports.
DEFAULT_NODE_POWER_WATTS = {
    NodeType.COMPUTE: 250.0,
    NodeType.NVME_STORAGE: 120.0,
    NodeType.DRAM: 90.0,
    NodeType.ACCELERATOR: 300.0,
    NodeType.SWITCH: 0.0,  # switch power is modelled by PowerModel separately
}


@dataclass
class Node:
    """A sled attached to the rack fabric.

    Attributes
    ----------
    name:
        Unique identifier within the fabric.
    node_type:
        Role of the sled.
    nic_rate_bps:
        Line rate of the sled's NIC; flows sourced at the node cannot exceed
        this regardless of fabric capacity.
    radix:
        Number of fabric ports on the sled (how many neighbours it can have
        in a direct-connect topology).
    position:
        Optional ``(row, column)`` placement inside the rack, used to derive
        cable lengths for the media model (the paper assumes roughly 2 m
        between adjacent switching elements).
    """

    name: str
    node_type: NodeType = NodeType.COMPUTE
    nic_rate_bps: float = 100 * GBPS
    radix: int = 4
    position: Optional[Tuple[int, int]] = None
    power_watts: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.nic_rate_bps <= 0:
            raise ValueError(f"nic_rate_bps must be positive, got {self.nic_rate_bps!r}")
        if self.radix <= 0:
            raise ValueError(f"radix must be positive, got {self.radix!r}")
        if self.power_watts < 0:
            self.power_watts = DEFAULT_NODE_POWER_WATTS[self.node_type]

    @property
    def is_endpoint(self) -> bool:
        """Whether the node sources and sinks application traffic."""
        return self.node_type.is_endpoint

    def distance_to(self, other: "Node", spacing_meters: float = 2.0) -> float:
        """Manhattan cable distance to *other* given a rack grid spacing.

        Falls back to *spacing_meters* when either node has no position --
        adjacent elements in the paper's Figure 1 are 2 m apart.
        """
        if self.position is None or other.position is None:
            return spacing_meters
        dr = abs(self.position[0] - other.position[0])
        dc = abs(self.position[1] - other.position[1])
        return max(1, dr + dc) * spacing_meters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, {self.node_type.value})"
