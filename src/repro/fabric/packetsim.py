"""Packet-level simulation over a :class:`~repro.fabric.fabric.Fabric`.

This is the detailed (per-packet) companion of the fluid simulator -- and,
since the transport layer (:mod:`repro.sim.transport`) landed, a full
simulation *backend*: :class:`PacketBackend` runs whole flow workloads
packetised and is selectable from every experiment surface via
``ExperimentSpec.backend = "packet"``.

Model
-----
Each directed link ``(a, b)`` has a single transmitter feeding a FIFO
output buffer.  A packet's journey is simulated hop by hop:

1. the packet's head becomes available at the forwarding element (after
   the cut-through switching delay at intermediate hops),
2. the output buffer is checked *bit-accurately*: the backlog of a
   work-conserving FIFO transmitter at time ``t`` is exactly
   ``(busy_until - t) * capacity`` bits (the untransmitted remainder of
   everything accepted so far).  If backlog plus the arriving packet
   exceed the per-port buffer, the packet is tail-dropped; if the backlog
   alone exceeds the ECN threshold fraction of the buffer, the port's
   congestion-mark counter increments,
3. accepted packets wait for the backlog to drain (queueing delay), then
   occupy the transmitter for their serialization time,
4. the head reaches the next element after the link's propagation plus
   SerDes/FEC latency.

On an idle fabric this reproduces exactly the closed-form breakdown of
:meth:`repro.fabric.fabric.Fabric.path_latency`, which the validation
suite (and ``tests/test_backend_fidelity.py``) asserts.

The earlier implementation approximated the buffer with a drain-time
proxy (drop when ``queueing > buffer/capacity``); the occupancy check is
stricter by exactly the arriving packet's own bits, charges drops and
congestion marks to per-port counters, and feeds queue-occupancy samples
into the fabric's :meth:`~repro.fabric.fabric.Fabric.stats_for` streams so
control-loop ticks observe packet-level congestion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.fabric.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, FlowSet
from repro.sim.fluid import FluidResult
from repro.sim.packet import HopRecord, Packet
from repro.sim.packet_batch import BatchedPacketCore
from repro.sim.packet_shard import ShardedPacketCore
from repro.sim.trace import NullTrace, TraceRecorder
from repro.sim.transport import PacketTransport, TransportConfig

DirectedKey = Tuple[str, str]

#: Backlog fraction of the buffer above which a port marks congestion
#: (an ECN-style signal surfaced through ``PortState.ecn_marks``).
DEFAULT_ECN_THRESHOLD = 0.65

#: Selectable packet engines: the event-driven oracle, the batched train
#: calendar (:mod:`repro.sim.packet_batch`) and the spatially-sharded
#: coordinator over batched cores (:mod:`repro.sim.packet_shard`), pinned
#: bit-identical by ``tests/test_packet_parity.py`` and
#: ``tests/test_packet_shard.py`` -- the packet analogue of the fluid
#: core's ``ALLOCATORS``.
ENGINES = ("event", "batched", "sharded")


@dataclass
class PortState:
    """Transmitter and FIFO output-buffer state of one directed link."""

    #: Output buffer size in bits (tail-drop beyond this occupancy).
    buffer_bits: float = float("inf")
    #: Link rate the transmitter is currently clocking at (refreshed from
    #: the live link on every forward, so reconfigurations take effect).
    capacity_bps: float = 0.0
    busy_until: float = 0.0
    packets_sent: int = 0
    packets_dropped: int = 0
    bits_sent: float = 0.0
    bits_dropped: float = 0.0
    #: Packets that arrived to a backlog above the ECN threshold.
    ecn_marks: int = 0
    queueing_seconds_total: float = 0.0
    max_backlog_bits: float = 0.0


class PacketLevelNetwork:
    """Event-driven packet forwarding over a fabric.

    Parameters
    ----------
    simulator:
        Event engine the forwarding events run on.
    fabric:
        The fabric whose topology, switches and link stats are used.
    trace:
        Optional event trace recorder.
    ecn_threshold:
        Backlog fraction of the buffer above which arrivals are marked.
    record_hops:
        Attach a :class:`~repro.sim.packet.HopRecord` per hop to every
        packet (the Figure-1 breakdown path).  Disabled for large
        packetised runs -- per-packet queueing totals are still kept.
    retain_packets:
        Keep delivered/dropped :class:`~repro.sim.packet.Packet` objects
        in :attr:`delivered`/:attr:`dropped`.  Disabled by the backend at
        scale; counters and queueing samples are always maintained.
    """

    def __init__(
        self,
        simulator: Simulator,
        fabric: Fabric,
        trace: Optional[TraceRecorder] = None,
        ecn_threshold: float = DEFAULT_ECN_THRESHOLD,
        record_hops: bool = True,
        retain_packets: bool = True,
    ) -> None:
        if not 0.0 < ecn_threshold <= 1.0:
            raise ValueError(f"ecn_threshold must be in (0, 1], got {ecn_threshold!r}")
        self.simulator = simulator
        self.fabric = fabric
        self.trace = trace if trace is not None else NullTrace()
        self.ecn_threshold = ecn_threshold
        self.record_hops = record_hops
        self.retain_packets = retain_packets
        #: Directed links administratively disabled (e.g. created by a
        #: reconfiguration batch and still training): everything offered to
        #: them is dropped, the packet analogue of the fluid model's
        #: zero-effective-capacity disabled links.
        self.disabled_links: Set[DirectedKey] = set()
        self._ports: Dict[DirectedKey, PortState] = {}
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []
        #: Per-packet end-to-end queueing totals of delivered packets
        #: (feeds the p99 queueing-delay metric without retaining packets).
        self.queueing_samples: List[float] = []
        # Conservation counters (the property tests pin their invariant:
        # entered == delivered + dropped + in_flight at any instant).
        self.packets_injected = 0
        self.packets_entered = 0
        self.in_flight = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.bits_delivered = 0.0
        #: Optional hooks the transport layer installs.
        self.on_delivered: Optional[Callable[[Packet], None]] = None
        self.on_dropped: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------ #
    # Port bookkeeping
    # ------------------------------------------------------------------ #
    def _port(self, key: DirectedKey) -> PortState:
        port = self._ports.get(key)
        if port is None:
            a, b = key
            link = self.fabric.topology.link_between(a, b)
            port = PortState(
                buffer_bits=self.fabric.config.switch_model.buffer_bits,
                capacity_bps=link.capacity_bps,
            )
            self._ports[key] = port
        return port

    def sync_port_capacity(self, key: DirectedKey, capacity_bps: float) -> None:
        """Reshape one port's drain schedule for a live capacity change.

        The bits already accepted into the FIFO keep their volume, but the
        time they need to drain changes with the service rate -- so the
        backlog's drain deadline (``busy_until``) is rescaled *at the
        mutation instant*, not lazily whenever the next packet happens to
        arrive at the port.  This is what makes mid-run ``set_capacity``/
        ``add_link`` (PLP reconfiguration batches, failure-plan mutations)
        first-class: the very next arrival -- and any drain-time query --
        sees the reshaped backlog, which changes queueing, tail-drop and
        ECN decisions from the mutation onward.

        A port whose capacity drops to zero keeps its drain deadline: the
        packets it already accepted have their departure events on the
        calendar and complete on the old schedule, while new arrivals are
        dropped by the zero-capacity check.
        """
        port = self._ports.get(key)
        if port is None:
            a, b = key
            if not self.fabric.topology.has_link(a, b):
                return  # nothing routed here yet and no live link to seed from
            port = self._port(key)
        now = self.simulator.now
        remaining = port.busy_until - now
        if remaining > 0.0 and port.capacity_bps > 0.0 and capacity_bps > 0.0:
            port.busy_until = now + remaining * (port.capacity_bps / capacity_bps)
        port.capacity_bps = capacity_bps

    def port_drain_time(self, key: DirectedKey) -> float:
        """Seconds until the port's accepted backlog has fully drained."""
        port = self._ports.get(key)
        if port is None:
            return 0.0
        return max(0.0, port.busy_until - self.simulator.now)

    def port_stats(self) -> Dict[DirectedKey, PortState]:
        """Snapshot of per-directed-link transmitter statistics.

        The returned :class:`PortState` objects are *copies* frozen at
        call time; live simulation state is never handed out (callers used
        to receive the mutable internals and see them change underneath).
        """
        return {key: replace(port) for key, port in self._ports.items()}

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #
    def inject(self, packet: Packet, path: Optional[Sequence[str]] = None) -> None:
        """Schedule *packet* to enter the fabric at its creation time.

        The path defaults to the fabric router's choice for the packet's
        source/destination pair.
        """
        if path is None:
            path = self.fabric.router.path(packet.src, packet.dst, flow_id=packet.flow_id)
        path = list(path)
        if path[0] != packet.src or path[-1] != packet.dst:
            raise ValueError(
                f"path {path} does not connect {packet.src!r} to {packet.dst!r}"
            )
        self.packets_injected += 1
        self.simulator.schedule_at(
            packet.created_at, self._forward, packet, path, 0, packet.created_at
        )

    def inject_all(self, packets: Sequence[Packet]) -> None:
        """Inject a batch of packets."""
        for packet in packets:
            self.inject(packet)

    # ------------------------------------------------------------------ #
    # Hop-by-hop forwarding
    # ------------------------------------------------------------------ #
    def _forward(
        self, packet: Packet, path: List[str], hop_index: int, head_available: float
    ) -> None:
        """Forward *packet* out of ``path[hop_index]`` towards the next node.

        *head_available* is the time the packet's head became available for
        forwarding at this element (arrival time at the element, or the
        injection time at the source).
        """
        here = path[hop_index]
        nxt = path[hop_index + 1]
        link = self.fabric.topology.link_between(here, nxt)
        key = (here, nxt)
        port = self._port(key)
        if hop_index == 0:
            self.packets_entered += 1
            self.in_flight += 1

        capacity = link.capacity_bps
        if capacity <= 0:
            self._drop(packet, port, here, nxt, f"link {here}->{nxt} has no active capacity")
            return
        if key in self.disabled_links:
            self._drop(packet, port, here, nxt, f"link {here}->{nxt} is disabled")
            return
        if capacity != port.capacity_bps:
            # The link was reconfigured: the bits already accepted must keep
            # draining at the *new* rate.  Rescale the remaining busy time so
            # queued bits are conserved (remaining_old x old_rate == bits),
            # otherwise the occupancy check would mis-size the buffer by the
            # capacity ratio after every mid-run capacity change.
            now = self.simulator.now
            remaining = port.busy_until - now
            if remaining > 0.0 and port.capacity_bps > 0.0:
                port.busy_until = now + remaining * (port.capacity_bps / capacity)
            port.capacity_bps = capacity

        switching = 0.0
        if hop_index > 0:
            # Intermediate element: pay the forwarding (cut-through) latency.
            switching = self.fabric.switch(here).forwarding_latency(packet.size_bits)
        ready = head_available + switching

        queueing = port.busy_until - ready
        if queueing <= 0.0:
            queueing = 0.0
        backlog = queueing * capacity
        if backlog > port.max_backlog_bits:
            port.max_backlog_bits = backlog
        if backlog + packet.size_bits > port.buffer_bits:
            self._drop(packet, port, here, nxt, f"buffer overflow at {here}->{nxt}")
            return
        if backlog > self.ecn_threshold * port.buffer_bits:
            port.ecn_marks += 1

        serialization = link.serialization_delay(packet.size_bits)
        start_tx = ready + queueing
        port.busy_until = start_tx + serialization
        port.packets_sent += 1
        port.bits_sent += packet.size_bits
        port.queueing_seconds_total += queueing
        packet.queueing_seconds += queueing
        # Occupancy is fed to the stats stream as a buffer *fraction* (the
        # price tagger's congestion term is dimensionless), not raw bits.
        occupancy_fraction = (
            backlog / port.buffer_bits if math.isfinite(port.buffer_bits) else 0.0
        )
        self.fabric.stats_for(here, nxt).observe(
            packets=1, queue_occupancy=occupancy_fraction
        )

        propagation = link.propagation_delay
        phy = link.phy_latency
        head_at_next = start_tx + propagation + phy

        if self.record_hops:
            packet.record_hop(
                HopRecord(
                    element=here,
                    arrival=head_available,
                    departure=start_tx,
                    queueing=queueing,
                    switching=switching,
                    serialization=serialization if hop_index == 0 else 0.0,
                    propagation=propagation + phy,
                )
            )

        if hop_index + 1 == len(path) - 1:
            # Next element is the destination: the packet is delivered once
            # its last bit has arrived.
            delivered_at = start_tx + serialization + propagation + phy
            self.simulator.schedule_at(delivered_at, self._deliver, packet, path)
        else:
            self.simulator.schedule_at(
                head_at_next, self._forward, packet, path, hop_index + 1, head_at_next
            )

    def _drop(
        self, packet: Packet, port: PortState, here: str, nxt: str, reason: str
    ) -> None:
        packet.mark_dropped(reason)
        port.packets_dropped += 1
        port.bits_dropped += packet.size_bits
        self.dropped_count += 1
        self.in_flight -= 1
        if self.retain_packets:
            self.dropped.append(packet)
        self.fabric.stats_for(here, nxt).observe(drops=1, packets=1)
        self.trace.record(
            self.simulator.now,
            "packet_dropped",
            packet_id=packet.packet_id,
            at=f"{here}->{nxt}",
        )
        if self.on_dropped is not None:
            self.on_dropped(packet)

    def _deliver(self, packet: Packet, path: List[str]) -> None:
        packet.mark_delivered(self.simulator.now)
        self.delivered_count += 1
        self.in_flight -= 1
        self.bits_delivered += packet.size_bits
        self.queueing_samples.append(packet.queueing_seconds)
        if self.retain_packets:
            self.delivered.append(packet)
        self.trace.record(
            self.simulator.now,
            "packet_delivered",
            packet_id=packet.packet_id,
            src=packet.src,
            dst=packet.dst,
            latency=packet.latency,
            hops=len(path) - 1,
        )
        if self.on_delivered is not None:
            self.on_delivered(packet)

    # ------------------------------------------------------------------ #
    # Result summaries
    # ------------------------------------------------------------------ #
    def latencies(self) -> List[float]:
        """End-to-end latencies of all retained delivered packets."""
        return [p.latency for p in self.delivered if p.latency is not None]

    def delivery_fraction(self) -> float:
        """Delivered packets over delivered plus dropped."""
        total = self.delivered_count + self.dropped_count
        if total == 0:
            return 0.0
        return self.delivered_count / total


class PacketBackend:
    """Packet-level simulation backend with the fluid simulator's surface.

    Assembles an event engine, a :class:`PacketLevelNetwork` and a
    :class:`~repro.sim.transport.PacketTransport` over a flow workload,
    and exposes the subset of the
    :class:`~repro.sim.fluid.FluidFlowSimulator` API that controllers and
    the failure injector consume -- ``add_controller``,
    ``instantaneous_link_utilisation``/``instantaneous_link_load``,
    ``active_flows``, ``pending_demand_bits``, ``route_of``, ``links``,
    ``has_link``/``set_capacity``/``add_link``/``set_enabled`` and
    ``reroute`` -- so ``controller="crc"``, the closed-loop
    ``controller="loop"`` runtime and scenario failure plans all run
    unchanged against packets.

    Flows are routed at construction time on the fabric's router (after
    the controller's ``prepare`` step), matching the fluid backend's
    route-at-load-time contract.  Capacity mutations made through this
    facade are pushed eagerly into the per-port transmitter state
    (:meth:`PacketLevelNetwork.sync_port_capacity`): FIFO drain deadlines
    reshape at the mutation instant, so PLP reconfiguration batches and
    failure-plan mutations change queueing, tail-drop and ECN behaviour
    mid-run -- not just the report integrals.  The network's lazy
    fabric-read in ``_forward`` remains as a backstop for mutations made
    directly on the fabric without notifying the backend.

    ``run()`` returns a :class:`~repro.sim.fluid.FluidResult` with
    ``allocator="packet"`` -- one result schema across backends is what
    lets :class:`~repro.experiments.api.RunRecord` stay backend-agnostic.

    ``engine`` selects the execution core: ``"event"`` (the default)
    schedules one calendar event per packet-hop and is kept verbatim as
    the parity oracle; ``"batched"`` advances per-port FIFO *segment
    trains* and coalesces same-instant window refills into single
    calendar entries (:class:`~repro.sim.packet_batch.BatchedPacketCore`).
    Both engines produce bit-identical metrics, FCTs, queueing samples
    and port counters -- pinned by ``tests/test_packet_parity.py`` --
    and the batched engine is >= 5x faster on the scale-guard workload
    (``benchmarks/bench_packet_scale.py``).  The only sanctioned
    difference is ``events_processed``: the batched engine counts
    calendar entries, and one entry can carry a whole train, so
    ``max_events`` budgets coalesced entries rather than packet-hops.

    ``"sharded"`` layers :class:`~repro.sim.packet_shard.ShardedPacketCore`
    over up to ``shards`` batched cores, partitioning the flows by
    traffic closure so disjoint fabric regions advance independently
    (optionally across ``multiprocessing`` workers).  It holds the same
    bit-identical contract for every shard count; ``shards`` is a
    performance knob only.  With the sharded engine, ``max_events``
    budgets each shard's calendar independently.
    """

    def __init__(
        self,
        fabric: Fabric,
        flows: Sequence[Flow],
        transport: Optional[TransportConfig] = None,
        trace: Optional[TraceRecorder] = None,
        record_hops: bool = False,
        retain_packets: bool = False,
        max_events: int = 10_000_000,
        engine: str = "event",
        shards: int = 1,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events!r}")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if shards > 1 and engine != "sharded":
            raise ValueError(
                f"shards={shards!r} requires engine='sharded', got {engine!r}"
            )
        self.fabric = fabric
        self.engine = engine
        self.shards = shards
        self.trace = trace if trace is not None else NullTrace()
        self._flows = list(flows)
        if engine in ("batched", "sharded"):
            # One fused core plays all three roles; the facade methods
            # below address it through whichever surface they need.
            kwargs = dict(
                route_fn=self._route,
                config=transport,
                trace=self.trace,
                ecn_threshold=DEFAULT_ECN_THRESHOLD,
                record_hops=record_hops,
                retain_packets=retain_packets,
                port_factory=PortState,
            )
            if engine == "batched":
                core = BatchedPacketCore(fabric, self._flows, **kwargs)
            else:
                core = ShardedPacketCore(
                    fabric, self._flows, shards=shards, **kwargs)
            self.simulator = core
            self.network = core
            self.transport = core
        else:
            self.simulator = Simulator()
            self.network = PacketLevelNetwork(
                self.simulator,
                fabric,
                trace=self.trace,
                record_hops=record_hops,
                retain_packets=retain_packets,
            )
            self.transport = PacketTransport(
                self.simulator,
                self.network,
                self._flows,
                route_fn=self._route,
                config=transport,
            )
        self.default_max_events = max_events
        self._truncated = False
        # Capacity view: utilisation denominators and report integrals.
        self._capacities: Dict[DirectedKey, float] = dict(fabric.directed_capacities())
        self._disabled: Set[DirectedKey] = set()
        self._capacity_seconds: Dict[DirectedKey, float] = {
            key: 0.0 for key in self._capacities
        }
        self._integrated_until = 0.0
        # Windowed utilisation sampling state.
        self._sample_time = 0.0
        self._sample_bits: Dict[DirectedKey, float] = {key: 0.0 for key in self._capacities}
        self._last_utilisation: Dict[DirectedKey, float] = {
            key: 0.0 for key in self._capacities
        }

    def _route(self, flow: Flow) -> List[str]:
        return list(self.fabric.router.path(flow.src, flow.dst, flow_id=flow.flow_id))

    # ------------------------------------------------------------------ #
    # Fluid-compatible surface (controllers, failure injector)
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.simulator.now

    def add_controller(
        self,
        period: float,
        callback: Callable[["PacketBackend", float], None],
        start_offset: float = 0.0,
    ) -> None:
        """Register a periodic controller callback (the CRC hook).

        The callback receives this backend and the current time; it may
        call :meth:`set_capacity`, :meth:`add_link`, :meth:`reroute` and
        the observation methods, exactly as on the fluid simulator.
        """
        if period <= 0:
            raise ValueError(f"controller period must be positive, got {period!r}")

        def fire() -> None:
            callback(self, self.simulator.now)
            self.simulator.schedule(period, fire)

        self.simulator.schedule_at(max(start_offset, self.simulator.now), fire)

    def has_link(self, key: DirectedKey) -> bool:
        """Whether a directed link with *key* is known to the backend."""
        return key in self._capacities

    def links(self) -> Dict[DirectedKey, float]:
        """Known directed links and their recorded capacities.

        The fluid API's ``links()`` analogue; the control loop keys on
        membership to tell pre-existing links from ones a reconfiguration
        batch just created.
        """
        return dict(self._capacities)

    def set_capacity(self, key: DirectedKey, capacity_bps: float) -> None:
        """Apply a capacity change to the live per-port transmitter state.

        The port's FIFO drain deadline is rescaled at this instant
        (queued bits are conserved, their drain time changes with the
        service rate), so queueing, tail-drop and ECN decisions feel the
        change immediately -- see
        :meth:`PacketLevelNetwork.sync_port_capacity`.
        """
        if capacity_bps < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bps!r}")
        if key not in self._capacities:
            raise KeyError(f"unknown link {key!r}")
        self._integrate_capacities()
        self._capacities[key] = capacity_bps
        self.network.sync_port_capacity(key, capacity_bps)

    def add_link(self, key: DirectedKey, capacity_bps: float) -> None:
        """Register a link created mid-run (e.g. by a reconfiguration).

        The port is materialised eagerly at the new link's rate, so
        drain-time queries and the first arrival's occupancy check see it
        without waiting for a lazy fabric read.
        """
        self._integrate_capacities()
        self._capacities[key] = capacity_bps
        self._capacity_seconds.setdefault(key, 0.0)
        self._sample_bits.setdefault(key, 0.0)
        self._last_utilisation.setdefault(key, 0.0)
        self.network.sync_port_capacity(key, capacity_bps)

    def set_enabled(self, key: DirectedKey, enabled: bool) -> None:
        """Enable or disable a directed link for the packet network.

        A disabled link drops everything offered to it and contributes no
        capacity to the utilisation/report integrals -- the packet
        analogue of the fluid model's zero-effective-capacity disabled
        state.  The control loop disables links a reconfiguration batch
        just created until their training window completes.
        """
        if key not in self._capacities:
            raise KeyError(f"unknown link {key!r}")
        self._integrate_capacities()
        if enabled:
            self._disabled.discard(key)
            self.network.disabled_links.discard(key)
        else:
            self._disabled.add(key)
            self.network.disabled_links.add(key)

    def active_flows(self) -> List[Flow]:
        """Flows that have started and not yet finished."""
        return self.transport.active_flows()

    @property
    def pending_flow_count(self) -> int:
        """Registered flows that have not started yet."""
        return self.transport.unstarted_count

    def pending_demand_bits(self) -> float:
        """Total undelivered volume of the active flows."""
        return self.transport.pending_demand_bits()

    def reroute(self, flow_id: int, new_path: Sequence[DirectedKey]) -> None:
        """Move the remaining segments of an active flow onto a new path.

        Accepts the fluid API's directed-key form; segments already in
        flight complete on their old path.
        """
        keys = list(new_path)
        if not keys:
            raise ValueError("new path must not be empty")
        missing = [key for key in keys if key not in self._capacities]
        if missing:
            raise KeyError(f"reroute of flow {flow_id} uses unknown links: {missing}")
        path = [str(keys[0][0])] + [str(b) for _a, b in keys]
        self.transport.reroute(flow_id, path)

    def route_of(self, flow_id: int) -> List[DirectedKey]:
        """Directed-key route the remaining segments of a flow will take."""
        path = self.transport.state_of(flow_id).path
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def instantaneous_link_load(self) -> Dict[DirectedKey, float]:
        """True instantaneous per-link rate (bps), from port occupancy.

        A work-conserving FIFO transmitter serves at exactly its link
        rate while it holds backlog (``busy_until > now``) and at zero
        otherwise -- there is no in-between at a single instant.  This is
        the packet-level ground truth behind the fluid model's
        ``instantaneous_link_load`` (the sum of flow rates crossing the
        link), derived from in-flight packet occupancy rather than a
        since-last-observation window.
        """
        now = self.simulator.now
        ports = self.network._ports
        load: Dict[DirectedKey, float] = {}
        for key, capacity in self._capacities.items():
            if capacity <= 0.0 or key in self._disabled:
                load[key] = 0.0
                continue
            port = ports.get(key)
            load[key] = capacity if port is not None and port.busy_until > now else 0.0
        return load

    def instantaneous_link_utilisation(self) -> Dict[DirectedKey, float]:
        """True instantaneous utilisation: 1.0 while a port holds backlog.

        Derived from in-flight packet occupancy at the current instant
        (``busy_until > now``), exactly like
        :meth:`instantaneous_link_load`; controllers EWMA-smooth these
        samples into a duty-cycle estimate, the same way they smooth the
        fluid model's instantaneous rates.  The previous behaviour --
        bits sent since the last observation over the window's capacity
        -- remains available as :meth:`windowed_link_utilisation`.
        """
        now = self.simulator.now
        ports = self.network._ports
        utilisation: Dict[DirectedKey, float] = {}
        for key, capacity in self._capacities.items():
            if capacity <= 0.0 or key in self._disabled:
                utilisation[key] = 0.0
                continue
            port = ports.get(key)
            utilisation[key] = (
                1.0 if port is not None and port.busy_until > now else 0.0
            )
        return utilisation

    def windowed_link_utilisation(self) -> Dict[DirectedKey, float]:
        """Per-directed-link utilisation over the window since the last call.

        Bits sent since the previous observation divided by the link's
        capacity over that window -- an average, not an instantaneous
        value, which is why controllers observe
        :meth:`instantaneous_link_utilisation` instead.
        """
        now = self.simulator.now
        elapsed = now - self._sample_time
        if elapsed <= 0.0:
            return dict(self._last_utilisation)
        ports = self.network._ports
        utilisation: Dict[DirectedKey, float] = {}
        for key, capacity in self._capacities.items():
            port = ports.get(key)
            bits = port.bits_sent if port is not None else 0.0
            delta = bits - self._sample_bits.get(key, 0.0)
            self._sample_bits[key] = bits
            utilisation[key] = (
                min(1.0, delta / (capacity * elapsed)) if capacity > 0 else 0.0
            )
        self._sample_time = now
        self._last_utilisation = utilisation
        return dict(utilisation)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> FluidResult:
        """Drive the packet simulation to completion (or *until*).

        Mirrors the fluid loop's stopping contract: with ``until=None``
        the run ends once the transport has nothing left to do (delivered
        or abandoned every segment) even if periodic controller ticks
        remain scheduled; with an explicit *until*, controllers keep
        ticking up to the horizon.  Exhausting *max_events* with traffic
        still in flight marks the result truncated, like the fluid
        backend's event budget.
        """
        if max_events is None:
            max_events = self.default_max_events
        simulator = self.simulator
        if self.engine in ("batched", "sharded"):
            # The core fuses this loop (identical stop conditions) and
            # drops its link-property caches on entry; a train whose
            # later segments fall past ``until`` is split there.
            if simulator.drive(until, max_events):
                self._truncated = True
        else:
            while True:
                next_time = simulator.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if until is None and self.transport.finished:
                    # Only controller ticks remain and there is no traffic
                    # left for them to act on: the run is complete.
                    break
                if simulator.events_executed >= max_events:
                    self._truncated = True
                    break
                simulator.step()
        if until is not None and simulator.now < until and not self._truncated:
            simulator.run(until=until)
        return self._result(until)

    def _integrate_capacities(self) -> None:
        now = self.simulator.now
        elapsed = now - self._integrated_until
        if elapsed > 0.0:
            for key, capacity in self._capacities.items():
                if capacity > 0.0 and key not in self._disabled:
                    self._capacity_seconds[key] += capacity * elapsed
        self._integrated_until = now

    def _result(self, until: Optional[float]) -> FluidResult:
        self._integrate_capacities()
        if self._truncated:
            end_time = self.simulator.now
        else:
            end_time = (
                self.simulator.now if until is None else max(self.simulator.now, until)
            )
        idle_gap = end_time - self._integrated_until
        ports = self.network._ports
        bits_carried = {
            key: (ports[key].bits_sent if key in ports else 0.0)
            for key in self._capacities
        }
        return FluidResult(
            flows=FlowSet(self._flows),
            end_time=end_time,
            events_processed=self.simulator.events_executed,
            link_bits_carried=bits_carried,
            link_capacities=dict(self._capacities),
            trace=self.trace,
            link_capacity_seconds={
                key: self._capacity_seconds[key]
                + (
                    self._capacities[key] * idle_gap
                    if idle_gap > 0 and key not in self._disabled
                    else 0.0
                )
                for key in self._capacities
            },
            truncated=self._truncated,
            allocator="packet",
        )

    # ------------------------------------------------------------------ #
    # Packet-only metrics
    # ------------------------------------------------------------------ #
    def packet_metrics(self) -> Dict[str, float]:
        """The packet-only metric block merged into ``RunRecord.metrics``."""
        network = self.network
        total = network.delivered_count + network.dropped_count
        samples = network.queueing_samples
        ports = network._ports.values()
        return {
            "packets_injected": float(network.packets_injected),
            "packets_delivered": float(network.delivered_count),
            "packets_dropped": float(network.dropped_count),
            "drop_fraction": (network.dropped_count / total) if total else 0.0,
            "retransmissions": float(self.transport.retransmissions),
            "retransmitted_bits": self.transport.retransmitted_bits,
            "segments_abandoned": float(self.transport.segments_abandoned),
            "ecn_marks": float(sum(port.ecn_marks for port in ports)),
            "mean_queueing_delay": float(np.mean(samples)) if samples else 0.0,
            "p99_queueing_delay": (
                float(np.percentile(samples, 99.0)) if samples else 0.0
            ),
        }
