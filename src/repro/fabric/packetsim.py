"""Packet-level simulation over a :class:`~repro.fabric.fabric.Fabric`.

This is the detailed (per-packet) companion of the fluid simulator.  It is
used for the small-scale experiments -- the Figure 1 latency breakdown and
the E6 validation run that stands in for the paper's hardware proof of
concept -- where per-packet latency and its decomposition matter, and where
the packet count stays small enough for an interpreted event loop.

Model
-----
Each directed link ``(a, b)`` has a single transmitter that serialises one
packet at a time.  A packet's journey is simulated hop by hop:

1. the packet waits for the transmitter of the outgoing link to be free
   (queueing delay),
2. its first bit leaves after any switching delay at the forwarding element
   (cut-through: header time + pipeline; store-and-forward: full packet
   receive + pipeline),
3. the first bit arrives at the next element after the link's propagation
   plus SerDes/FEC latency,
4. the transmitter stays busy for the packet's serialization time.

On an idle fabric this reproduces exactly the closed-form breakdown of
:meth:`repro.fabric.fabric.Fabric.path_latency`, which is what the
validation test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.packet import HopRecord, Packet
from repro.sim.trace import NullTrace, TraceRecorder

DirectedKey = Tuple[str, str]


@dataclass
class PortState:
    """Transmitter state of one directed link."""

    busy_until: float = 0.0
    packets_sent: int = 0
    packets_dropped: int = 0
    bits_sent: float = 0.0
    #: Maximum tolerated waiting time before the port drops a packet,
    #: i.e. the drain time of the output buffer.
    max_wait: float = field(default=float("inf"))


class PacketLevelNetwork:
    """Event-driven packet forwarding over a fabric."""

    def __init__(
        self,
        simulator: Simulator,
        fabric: Fabric,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.simulator = simulator
        self.fabric = fabric
        self.trace = trace if trace is not None else NullTrace()
        self._ports: Dict[DirectedKey, PortState] = {}
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []

    # ------------------------------------------------------------------ #
    # Port bookkeeping
    # ------------------------------------------------------------------ #
    def _port(self, key: DirectedKey) -> PortState:
        if key not in self._ports:
            a, b = key
            link = self.fabric.topology.link_between(a, b)
            capacity = link.capacity_bps
            buffer_bits = self.fabric.config.switch_model.buffer_bits
            max_wait = buffer_bits / capacity if capacity > 0 else 0.0
            self._ports[key] = PortState(max_wait=max_wait)
        return self._ports[key]

    def port_stats(self) -> Dict[DirectedKey, PortState]:
        """Per-directed-link transmitter statistics."""
        return dict(self._ports)

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #
    def inject(self, packet: Packet, path: Optional[Sequence[str]] = None) -> None:
        """Schedule *packet* to enter the fabric at its creation time.

        The path defaults to the fabric router's choice for the packet's
        source/destination pair.
        """
        if path is None:
            path = self.fabric.router.path(packet.src, packet.dst, flow_id=packet.flow_id)
        path = list(path)
        if path[0] != packet.src or path[-1] != packet.dst:
            raise ValueError(
                f"path {path} does not connect {packet.src!r} to {packet.dst!r}"
            )
        self.simulator.schedule_at(
            packet.created_at, self._forward, packet, path, 0, packet.created_at
        )

    def inject_all(self, packets: Sequence[Packet]) -> None:
        """Inject a batch of packets."""
        for packet in packets:
            self.inject(packet)

    # ------------------------------------------------------------------ #
    # Hop-by-hop forwarding
    # ------------------------------------------------------------------ #
    def _forward(
        self, packet: Packet, path: List[str], hop_index: int, head_available: float
    ) -> None:
        """Forward *packet* out of ``path[hop_index]`` towards the next node.

        *head_available* is the time the packet's head became available for
        forwarding at this element (arrival time at the element, or the
        injection time at the source).
        """
        here = path[hop_index]
        nxt = path[hop_index + 1]
        link = self.fabric.topology.link_between(here, nxt)
        key = (here, nxt)
        port = self._port(key)
        now = self.simulator.now

        switching = 0.0
        if hop_index > 0:
            # Intermediate element: pay the forwarding (cut-through) latency.
            switching = self.fabric.switch(here).forwarding_latency(packet.size_bits)
        ready = head_available + switching

        start_tx = max(ready, port.busy_until)
        queueing = start_tx - ready
        if queueing > port.max_wait:
            packet.mark_dropped(f"buffer overflow at {here}->{nxt}")
            port.packets_dropped += 1
            self.dropped.append(packet)
            self.fabric.stats_for(here, nxt).observe(drops=1, packets=1)
            self.trace.record(
                now, "packet_dropped", packet_id=packet.packet_id, at=f"{here}->{nxt}"
            )
            return

        if link.capacity_bps <= 0:
            packet.mark_dropped(f"link {here}->{nxt} has no active capacity")
            port.packets_dropped += 1
            self.dropped.append(packet)
            self.fabric.stats_for(here, nxt).observe(drops=1, packets=1)
            self.trace.record(
                now, "packet_dropped", packet_id=packet.packet_id, at=f"{here}->{nxt}"
            )
            return

        serialization = link.serialization_delay(packet.size_bits)
        port.busy_until = start_tx + serialization
        port.packets_sent += 1
        port.bits_sent += packet.size_bits
        self.fabric.stats_for(here, nxt).observe(packets=1)

        propagation = link.propagation_delay
        phy = link.phy_latency
        head_at_next = start_tx + propagation + phy

        record = HopRecord(
            element=here,
            arrival=head_available,
            departure=start_tx,
            queueing=queueing,
            switching=switching,
            serialization=serialization if hop_index == 0 else 0.0,
            propagation=propagation + phy,
        )
        packet.record_hop(record)

        if hop_index + 1 == len(path) - 1:
            # Next element is the destination: the packet is delivered once
            # its last bit has arrived.
            delivered_at = start_tx + serialization + propagation + phy
            self.simulator.schedule_at(delivered_at, self._deliver, packet, path)
        else:
            self.simulator.schedule_at(
                head_at_next, self._forward, packet, path, hop_index + 1, head_at_next
            )

    def _deliver(self, packet: Packet, path: List[str]) -> None:
        packet.mark_delivered(self.simulator.now)
        self.delivered.append(packet)
        self.trace.record(
            self.simulator.now,
            "packet_delivered",
            packet_id=packet.packet_id,
            src=packet.src,
            dst=packet.dst,
            latency=packet.latency,
            hops=len(path) - 1,
        )

    # ------------------------------------------------------------------ #
    # Result summaries
    # ------------------------------------------------------------------ #
    def latencies(self) -> List[float]:
        """End-to-end latencies of all delivered packets."""
        return [p.latency for p in self.delivered if p.latency is not None]

    def delivery_fraction(self) -> float:
        """Delivered packets over delivered plus dropped."""
        total = len(self.delivered) + len(self.dropped)
        if total == 0:
            return 0.0
        return len(self.delivered) / total
