"""Switching-element models.

Figure 1 of the paper plots the latency a packet accumulates by traversing
layer-2 *cut-through* switches spaced every two metres, against the latency
of the media itself, and concludes that switching dominates at rack scale.
The models here provide exactly the per-hop cost terms that figure needs:

* :class:`CutThroughSwitch` -- forwarding starts as soon as the header has
  been received and the lookup completes, so the per-hop cost is the header
  reception time plus the pipeline (lookup + arbitration + crossbar) delay;
  the payload streams through behind the header.
* :class:`StoreAndForwardSwitch` -- the whole packet must be buffered before
  forwarding, adding a full serialization delay per hop.  Included as the
  pessimistic baseline.

Both models expose queue-aware packet-level behaviour for the detailed
simulator and closed-form per-hop latency for the analytical model
(:mod:`repro.analysis.latency`), which must agree -- that agreement is the
reproduction's substitute for the paper's hardware proof-of-concept
validation (experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.queues import DropTailQueue
from repro.sim.units import bits_from_bytes, nanoseconds

#: Pipeline latency (parse + lookup + arbitration + crossbar) of a modern
#: cut-through switching element.  Commodity cut-through ASICs quote port-to-
#: port latencies in the 300-500 ns range at 100G; the NetFPGA SUME
#: reference design the paper planned to use for its proof of concept sits
#: in the same band.
DEFAULT_PIPELINE_LATENCY = nanoseconds(400)

#: Bits of a packet that must arrive before a cut-through lookup can start
#: (Ethernet + IP + transport headers, ~64 bytes).
DEFAULT_HEADER_BITS = bits_from_bytes(64)

#: Default per-port buffer, in bits (512 KB).
DEFAULT_BUFFER_BITS = bits_from_bytes(512 * 1024)


@dataclass(frozen=True)
class SwitchModel:
    """Static parameters shared by the switch implementations."""

    pipeline_latency: float = DEFAULT_PIPELINE_LATENCY
    header_bits: float = DEFAULT_HEADER_BITS
    port_rate_bps: float = 100e9
    buffer_bits: float = DEFAULT_BUFFER_BITS

    def __post_init__(self) -> None:
        if self.pipeline_latency < 0:
            raise ValueError("pipeline_latency must be >= 0")
        if self.header_bits <= 0:
            raise ValueError("header_bits must be positive")
        if self.port_rate_bps <= 0:
            raise ValueError("port_rate_bps must be positive")
        if self.buffer_bits <= 0:
            raise ValueError("buffer_bits must be positive")


class CutThroughSwitch:
    """A cut-through layer-2 switching element.

    The closed-form per-hop latency (excluding queueing and the downstream
    propagation, which the link model owns) is::

        header_bits / port_rate  +  pipeline_latency

    i.e. the time to receive enough of the packet to make a forwarding
    decision plus the switching pipeline itself.  The payload never waits:
    it streams out behind the header at line rate, so packet size does not
    appear in the per-hop term (that is precisely why cut-through is the
    favourable baseline the paper measures against -- and switching *still*
    dominates the media at rack scale).
    """

    def __init__(self, name: str, model: Optional[SwitchModel] = None) -> None:
        self.name = name
        self.model = model if model is not None else SwitchModel()
        self.queue = DropTailQueue(
            capacity_bits=self.model.buffer_bits, name=f"{name}.out"
        )
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------ #
    # Closed-form latency terms (used by the analytical model)
    # ------------------------------------------------------------------ #
    def forwarding_latency(self, packet_size_bits: float) -> float:
        """Per-hop latency contributed by this switch for a packet.

        Packet size only matters when the packet is *smaller* than the
        header-decision threshold (a 64-byte minimum-size frame is received
        in full before the decision anyway).
        """
        decision_bits = min(self.model.header_bits, packet_size_bits)
        header_time = decision_bits / self.model.port_rate_bps
        return header_time + self.model.pipeline_latency

    def queueing_delay(self, backlog_bits: float) -> float:
        """Time for *backlog_bits* already queued ahead to drain at line rate."""
        if backlog_bits < 0:
            raise ValueError("backlog_bits must be >= 0")
        return backlog_bits / self.model.port_rate_bps

    # ------------------------------------------------------------------ #
    # Packet-level behaviour (used by the detailed simulator)
    # ------------------------------------------------------------------ #
    def accept(self, packet) -> bool:
        """Enqueue *packet* for forwarding; returns ``False`` on buffer overflow."""
        accepted = self.queue.enqueue(packet)
        if accepted:
            self.packets_forwarded += 1
        else:
            self.packets_dropped += 1
        return accepted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CutThroughSwitch({self.name!r})"


class StoreAndForwardSwitch(CutThroughSwitch):
    """A store-and-forward switching element (pessimistic baseline).

    The per-hop latency adds the full serialization of the packet, because
    the frame must be received and checksummed before the forwarding
    decision: ``packet_bits / port_rate + pipeline_latency``.
    """

    def forwarding_latency(self, packet_size_bits: float) -> float:  # noqa: D102
        if packet_size_bits < 0:
            raise ValueError("packet_size_bits must be >= 0")
        receive_time = packet_size_bits / self.model.port_rate_bps
        return receive_time + self.model.pipeline_latency
