"""The built-in topology families: grid, torus, fat-tree, dragonfly.

``grid`` and ``torus`` re-register the paper's original rack shapes (their
builders are byte-for-byte the ones the pre-registry harness called, so
every existing grid/torus experiment stays bit-identical); ``fat-tree``
and ``dragonfly`` extend the testbed to the datacenter-scale families the
ROADMAP names -- the k-pod folded Clos and the group/router/host dragonfly
with all-to-all global links.

Every family declares its shape in closed form (endpoint, switch and link
counts, hop diameter and the insertion-order bisection of
:meth:`~repro.fabric.topology.Topology.bisection_bandwidth_bps`); the
Hypothesis suite pins the declarations to the built graphs across
randomized valid dimensions.
"""

from __future__ import annotations

from repro.fabric.topologies.registry import (
    TopologyBuilder,
    TopologyError,
    TopologyMetadata,
    register_topology,
    TopologyFamily,
)
from repro.fabric.topology import Topology


def _mesh_bisection_links(rows: int, columns: int, wraparound: bool) -> int:
    """Crossing-link count of the insertion-order endpoint bisection.

    Grid/torus endpoints are the nodes themselves in row-major insertion
    order, so the half-set is simply ``index < (rows * columns) // 2`` and
    every edge can be classified with integer arithmetic -- no graph.
    """
    half = (rows * columns) // 2

    def crosses(first: int, second: int) -> bool:
        return (first < half) != (second < half)

    count = 0
    for row in range(rows):
        for column in range(columns):
            index = row * columns + column
            if column + 1 < columns and crosses(index, index + 1):
                count += 1
            if row + 1 < rows and crosses(index, index + columns):
                count += 1
    if wraparound:
        if columns > 2:
            for row in range(rows):
                if crosses(row * columns, row * columns + columns - 1):
                    count += 1
        if rows > 2:
            for column in range(columns):
                if crosses(column, (rows - 1) * columns + column):
                    count += 1
    return count


class _MeshFamily(TopologyFamily):
    """Shared grid/torus behaviour (both are 2-D sled meshes)."""

    family = "mesh"
    size_formula = "rows * columns"
    parameters = ("rows", "columns")
    _wraparound = False

    def validate(self, rows: int, columns: int) -> None:
        if rows < 2 or columns < 2:
            raise TopologyError(
                f"topology {self.name!r}: rows and columns must both be >= 2"
            )

    def metadata(
        self, link_capacity_bps: float, rows: int, columns: int
    ) -> TopologyMetadata:
        links = rows * (columns - 1) + columns * (rows - 1)
        diameter = (rows - 1) + (columns - 1)
        if self._wraparound:
            links += (rows if columns > 2 else 0) + (columns if rows > 2 else 0)
            diameter = rows // 2 + columns // 2
        bisection = _mesh_bisection_links(rows, columns, self._wraparound)
        return TopologyMetadata(
            name=self.name,
            endpoints=rows * columns,
            switches=0,
            links=links,
            diameter_hops=diameter,
            bisection_links=bisection,
            bisection_bandwidth_bps=bisection * link_capacity_bps,
        )


@register_topology
class GridFamily(_MeshFamily):
    """2-D grid of sleds, the paper's initial rack configuration."""

    name = "grid"
    description = "2-D sled grid (the paper's initial rack configuration)"

    def build_topology(
        self, builder: TopologyBuilder, rows: int, columns: int
    ) -> Topology:
        return builder.grid(rows, columns)


@register_topology
class TorusFamily(_MeshFamily):
    """2-D torus, the grid-to-torus reconfiguration target."""

    name = "torus"
    description = "2-D torus (grid plus wrap-around links, the Figure 2 target)"
    _wraparound = True

    def build_topology(
        self, builder: TopologyBuilder, rows: int, columns: int
    ) -> Topology:
        return builder.torus(rows, columns)


@register_topology
class FatTreeFamily(TopologyFamily):
    """k-pod folded Clos: pods^3/4 hosts under edge/aggregation/core tiers."""

    name = "fat-tree"
    family = "clos"
    description = "k-pod folded Clos (edge/aggregation/core, pods^3/4 hosts)"
    size_formula = "pods^3 / 4"
    parameters = ("pods",)

    def validate(self, pods: int) -> None:
        if pods < 2 or pods % 2 != 0:
            raise TopologyError(
                f"topology 'fat-tree': pods must be an even number >= 2, got {pods}"
            )

    def build_topology(self, builder: TopologyBuilder, pods: int) -> Topology:
        return builder.fat_tree(pods)

    def metadata(self, link_capacity_bps: float, pods: int) -> TopologyMetadata:
        half = pods // 2
        hosts = pods * half * half
        # Host uplinks, edge<->aggregation and aggregation<->core tiers are
        # the same count: pods * (pods/2)^2 links each.
        tier = pods * half * half
        bisection = hosts // 2
        return TopologyMetadata(
            name=self.name,
            endpoints=hosts,
            switches=half * half + pods * half * 2,
            links=3 * tier,
            diameter_hops=6,  # host-edge-agg-core-agg-edge-host
            bisection_links=bisection,
            bisection_bandwidth_bps=bisection * link_capacity_bps,
        )


@register_topology
class DragonflyFamily(TopologyFamily):
    """Dragonfly: all-to-all routers per group, one global link per group pair."""

    name = "dragonfly"
    family = "dragonfly"
    description = (
        "dragonfly (all-to-all routers per group, one global link per group pair)"
    )
    size_formula = "groups * routers_per_group * hosts_per_router"
    parameters = ("groups", "routers_per_group", "hosts_per_router")

    def validate(
        self, groups: int, routers_per_group: int, hosts_per_router: int
    ) -> None:
        if groups < 2:
            raise TopologyError(
                f"topology 'dragonfly': groups must be >= 2, got {groups}"
            )
        if routers_per_group < 1 or hosts_per_router < 1:
            raise TopologyError(
                "topology 'dragonfly': routers_per_group and hosts_per_router "
                f"must be >= 1, got {routers_per_group} and {hosts_per_router}"
            )

    def build_topology(
        self,
        builder: TopologyBuilder,
        groups: int,
        routers_per_group: int,
        hosts_per_router: int,
    ) -> Topology:
        return builder.dragonfly(groups, routers_per_group, hosts_per_router)

    def metadata(
        self,
        link_capacity_bps: float,
        groups: int,
        routers_per_group: int,
        hosts_per_router: int,
    ) -> TopologyMetadata:
        hosts = groups * routers_per_group * hosts_per_router
        local = groups * routers_per_group * (routers_per_group - 1) // 2
        global_links = groups * (groups - 1) // 2
        # With >= 2 routers per group the rotated global attachment leaves
        # host pairs that need the full local-global-local traversal; with
        # one router per group the router plane is a complete graph.
        diameter = 5 if routers_per_group >= 2 else 3
        bisection = hosts // 2
        return TopologyMetadata(
            name=self.name,
            endpoints=hosts,
            switches=groups * routers_per_group,
            links=hosts + local + global_links,
            diameter_hops=diameter,
            bisection_links=bisection,
            bisection_bandwidth_bps=bisection * link_capacity_bps,
        )
