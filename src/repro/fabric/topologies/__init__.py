"""Topology families: the pluggable registry of buildable fabric shapes.

* :mod:`repro.fabric.topologies.registry` -- the :class:`TopologyFamily`
  interface, the :func:`register_topology` decorator and the name-based
  build/metadata dispatch every experiment surface funnels through.
* :mod:`repro.fabric.topologies.families` -- the built-in families: the
  paper's ``grid``/``torus`` rack shapes plus the datacenter-scale
  ``fat-tree`` (k-pod folded Clos) and ``dragonfly`` (groups x routers x
  hosts, all-to-all global links).

Each family's legal reconfiguration moves live in the candidate registry
(:mod:`repro.core.candidates`), keyed by the family name stamped on built
topologies.
"""

from repro.fabric.topologies.registry import (
    TopologyError,
    TopologyFamily,
    TopologyMetadata,
    build_topology_fabric,
    get_topology,
    register_topology,
    topology_catalog,
    topology_metadata,
    topology_names,
)
from repro.fabric.topologies.families import (
    DragonflyFamily,
    FatTreeFamily,
    GridFamily,
    TorusFamily,
)

__all__ = [
    "TopologyError",
    "TopologyFamily",
    "TopologyMetadata",
    "build_topology_fabric",
    "get_topology",
    "register_topology",
    "topology_catalog",
    "topology_metadata",
    "topology_names",
    "DragonflyFamily",
    "FatTreeFamily",
    "GridFamily",
    "TorusFamily",
]
