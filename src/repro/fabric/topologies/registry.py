"""The topology-family registry.

Scenarios, sweeps and the CLI refer to fabrics by a topology *name*
(``"grid"``, ``"torus"``, ``"fat-tree"``, ``"dragonfly"``).  A
:class:`TopologyFamily` registered with the :func:`register_topology`
decorator (mirroring the controller registry in
:mod:`repro.core.controllers`) turns that name into:

* a **builder**: flat scenario parameters -> a concrete
  :class:`~repro.fabric.topology.Topology` (and, via
  :func:`build_topology_fabric`, a routed
  :class:`~repro.fabric.fabric.Fabric`),
* **declared metadata**: endpoint/switch/link counts, hop diameter and the
  bisection bandwidth of the builder's output, in closed form -- the
  Hypothesis suite in ``tests/test_topologies.py`` pins the built graph to
  every declared number, and
* a **family tag** stamped onto the built topology
  (:attr:`Topology.kind`/:attr:`Topology.dimensions`), which is what lets
  the reconfiguration-candidate registry (:mod:`repro.core.candidates`)
  refuse moves on fabrics they do not apply to.

A third-party family plugs in without touching this package::

    @register_topology
    class RingFamily(TopologyFamily):
        name = "ring"
        ...

    run_scenario("uniform-burst", {"topology": "ring"})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type

from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.topology import Topology, TopologyBuilder
from repro.phy.fec import FEC_RS528, FecScheme
from repro.sim.units import GBPS


class TopologyError(ValueError):
    """Raised for unknown topology names, duplicates or bad dimensions."""


@dataclass(frozen=True)
class TopologyMetadata:
    """Closed-form shape declaration of one built topology instance.

    ``bisection_links``/``bisection_bandwidth_bps`` use the same estimator
    semantics as :meth:`Topology.bisection_bandwidth_bps`: the endpoint
    list is split in half in insertion order and crossing link capacity is
    summed (for the switch-based families every first-half host contributes
    exactly its one uplink, so the cut is ``endpoints // 2`` links wide).
    """

    name: str
    endpoints: int
    switches: int
    links: int
    diameter_hops: int
    bisection_links: int
    bisection_bandwidth_bps: float

    @property
    def nodes(self) -> int:
        """Total graph vertices (endpoints plus switches)."""
        return self.endpoints + self.switches


class TopologyFamily:
    """Interface of one registered topology family.

    Subclasses declare the class attributes and implement
    :meth:`validate`, :meth:`build_topology` and :meth:`metadata`; the
    base class provides parameter extraction and fabric assembly.
    """

    #: Registry key, also stamped as :attr:`Topology.kind` on built graphs.
    name: str = ""
    #: Broader family group for catalog listings (``"mesh"``, ``"clos"``...).
    family: str = ""
    #: One line for ``repro-fabric list-topologies``.
    description: str = ""
    #: Human-readable endpoint-count formula for the catalog.
    size_formula: str = ""
    #: Scenario parameter names this family consumes, in order.
    parameters: Tuple[str, ...] = ()

    def dimensions(self, params: Mapping[str, object]) -> Dict[str, int]:
        """Extract and validate this family's dimensions from flat *params*.

        Raises :class:`TopologyError` on missing or invalid values, which
        the scenario layer surfaces as a ``ScenarioError`` (so invalid
        sweep-grid corners are dropped, not crashed on).
        """
        dims: Dict[str, int] = {}
        for key in self.parameters:
            if key not in params:
                raise TopologyError(
                    f"topology {self.name!r} needs parameter {key!r}"
                )
            try:
                dims[key] = int(params[key])  # type: ignore[call-overload]
            except (TypeError, ValueError):
                raise TopologyError(
                    f"topology {self.name!r}: {key} must be an integer, "
                    f"got {params[key]!r}"
                ) from None
        self.validate(**dims)
        return dims

    def validate(self, **dims: int) -> None:
        """Reject dimension combinations the builder cannot honour."""

    def build_topology(self, builder: TopologyBuilder, **dims: int) -> Topology:
        """Build the topology with *builder* (already carrying lane config)."""
        raise NotImplementedError

    def metadata(self, link_capacity_bps: float, **dims: int) -> TopologyMetadata:
        """Declared shape of the instance ``dims`` describes."""
        raise NotImplementedError

    def build_fabric(
        self,
        dims: Mapping[str, int],
        lanes_per_link: int = 2,
        lane_rate_bps: float = 25 * GBPS,
        config: Optional[FabricConfig] = None,
    ) -> Fabric:
        """Materialise a routed fabric for this family."""
        builder = TopologyBuilder(
            lanes_per_link=lanes_per_link, lane_rate_bps=lane_rate_bps
        )
        topology = self.build_topology(builder, **dict(dims))
        topology.kind = self.name
        return Fabric(topology, config if config is not None else FabricConfig())


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, TopologyFamily] = {}


def register_topology(cls: Type[TopologyFamily]) -> Type[TopologyFamily]:
    """Class decorator registering a :class:`TopologyFamily` under its name."""
    if not cls.name:
        raise TopologyError(f"{cls.__name__} must declare a non-empty name")
    if cls.name in _REGISTRY:
        raise TopologyError(f"topology {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls()
    return cls


def get_topology(name: str) -> TopologyFamily:
    """Look a topology family up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TopologyError(
            f"unknown topology {name!r} (known: {known})"
        ) from None


def topology_names() -> List[str]:
    """Registered topology names, in registration order."""
    return list(_REGISTRY)


def topology_catalog() -> List[TopologyFamily]:
    """All registered families, in registration order (for the CLI)."""
    return list(_REGISTRY.values())


def build_topology_fabric(
    name: str,
    params: Mapping[str, object],
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """Build a fabric by topology name from a flat parameter mapping.

    This is the single dispatch point behind
    :func:`repro.experiments.harness.build_fabric`,
    :class:`~repro.experiments.api.FabricSpec` and the scenario registry.
    """
    family = get_topology(name)
    dims = family.dimensions(params)
    return family.build_fabric(
        dims,
        lanes_per_link=lanes_per_link,
        lane_rate_bps=lane_rate_bps,
        config=config,
    )


def topology_metadata(
    name: str,
    params: Mapping[str, object],
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    fec: FecScheme = FEC_RS528,
) -> TopologyMetadata:
    """Declared metadata for the instance *params* describes (no graph built).

    ``bisection_bandwidth_bps`` is *usable* capacity -- the per-link lane
    budget after the FEC overhead :meth:`Link.capacity_bps` charges -- so
    the declaration matches the built graph's estimator exactly.
    """
    family = get_topology(name)
    dims = family.dimensions(params)
    link_capacity = fec.effective_rate(float(lanes_per_link) * float(lane_rate_bps))
    return family.metadata(link_capacity, **dims)
