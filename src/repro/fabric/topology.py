"""Topology representation and builders.

The fabric topology is a graph whose vertices are sleds or dedicated switch
elements (:class:`~repro.fabric.node.Node`) and whose edges are physical
lane bundles (:class:`~repro.phy.link.Link`).  The Closed Ring Control
mutates this graph at runtime through Physical Layer Primitives: breaking a
bundle frees lanes, which can be re-pointed to create new edges -- the
grid-to-torus transformation of the paper's Figure 2 is the canonical
example and has a dedicated helper here.

Builders are provided for the topologies used across the experiments:
line, ring, 2-D grid, 2-D torus, full mesh, star (single ToR), hypercube
and a small folded-Clos (fat-tree) used as the over-provisioned baseline.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.fabric.node import Node, NodeType
from repro.phy.fec import FEC_RS528, FecScheme
from repro.phy.link import Link
from repro.phy.media import COPPER_DAC, Media
from repro.sim.units import GBPS

#: Default spacing between adjacent switching elements, from the paper's
#: Figure 1 caption ("we assume a switch every 2 meters").
DEFAULT_SPACING_METERS = 2.0

LinkKey = Tuple[str, str]


def canonical_key(a: str, b: str) -> LinkKey:
    """Order-independent key for the undirected edge ``{a, b}``."""
    return (a, b) if a <= b else (b, a)


def merge_directed_values(directed):
    """Fold per-direction link values onto canonical keys, worse direction wins.

    *directed* maps ``(upstream, downstream)`` pairs to a scalar (load,
    utilisation, ...); the result maps :func:`canonical_key` keys to the
    maximum over both directions -- the convention every consumer of
    per-link congestion signals (CRC, scheduler, control loop) shares.
    """
    merged = {}
    for (a, b), value in directed.items():
        key = canonical_key(str(a), str(b))
        merged[key] = max(merged.get(key, 0.0), value)
    return merged


class Topology:
    """A mutable rack-fabric topology."""

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[LinkKey, Link] = {}
        #: Registered topology-family name this graph was built as (e.g.
        #: ``"grid"``, ``"fat-tree"``) and the dimensions it was built with.
        #: ``None``/empty for hand-assembled topologies.  Reconfiguration
        #: candidates consult these to refuse fabrics they do not apply to;
        #: the tags record how the fabric was *built*, so they deliberately
        #: survive runtime reconfiguration (a grid that grew wrap-around
        #: links is still the grid family's fabric).
        self.kind: Optional[str] = None
        self.dimensions: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> Node:
        """Add a node; re-adding the same name replaces the stored object."""
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def node(self, name: str) -> Node:
        """Return the node object for *name* (KeyError if absent)."""
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        """Whether a node with *name* exists."""
        return name in self._nodes

    def nodes(self) -> List[Node]:
        """All node objects."""
        return list(self._nodes.values())

    def node_names(self) -> List[str]:
        """All node names in insertion order."""
        return list(self._nodes.keys())

    def endpoints(self) -> List[str]:
        """Names of nodes that source/sink traffic (everything but switches)."""
        return [name for name, node in self._nodes.items() if node.is_endpoint]

    def switches(self) -> List[str]:
        """Names of dedicated switch nodes."""
        return [name for name, node in self._nodes.items() if not node.is_endpoint]

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def add_link(self, link: Link) -> Link:
        """Add a link between two already-registered nodes."""
        for endpoint in link.endpoints:
            if endpoint not in self._nodes:
                raise KeyError(f"link endpoint {endpoint!r} is not a node in {self.name!r}")
        key = canonical_key(*link.endpoints)
        if key in self._links:
            raise ValueError(f"a link between {key} already exists")
        self._links[key] = link
        self._graph.add_edge(*key)
        return link

    def remove_link(self, a: str, b: str) -> Link:
        """Remove and return the link between *a* and *b*."""
        key = canonical_key(a, b)
        if key not in self._links:
            raise KeyError(f"no link between {a!r} and {b!r}")
        link = self._links.pop(key)
        self._graph.remove_edge(*key)
        return link

    def has_link(self, a: str, b: str) -> bool:
        """Whether a link joins *a* and *b*."""
        return canonical_key(a, b) in self._links

    def link_between(self, a: str, b: str) -> Link:
        """The link joining *a* and *b* (KeyError if absent)."""
        return self._links[canonical_key(a, b)]

    def links(self) -> List[Link]:
        """All link objects."""
        return list(self._links.values())

    def link_keys(self) -> List[LinkKey]:
        """All canonical link keys."""
        return list(self._links.keys())

    def neighbors(self, name: str) -> List[str]:
        """Names of nodes adjacent to *name*."""
        return list(self._graph.neighbors(name))

    def degree(self, name: str) -> int:
        """Number of links attached to *name*."""
        return self._graph.degree(name)

    # ------------------------------------------------------------------ #
    # Graph-level queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying (live) networkx graph.  Mutate through Topology only."""
        return self._graph

    def weighted_graph(self, weight_fn: Callable[[Link], float]) -> nx.Graph:
        """A copy of the graph with ``weight`` edge attributes from *weight_fn*."""
        graph = nx.Graph()
        graph.add_nodes_from(self._graph.nodes)
        for key, link in self._links.items():
            graph.add_edge(*key, weight=weight_fn(link))
        return graph

    def is_connected(self) -> bool:
        """Whether every node can reach every other node."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def diameter(self) -> int:
        """Longest shortest path (in hops) between any node pair."""
        return nx.diameter(self._graph)

    def average_shortest_path_hops(self) -> float:
        """Mean shortest-path length in hops over all node pairs."""
        return nx.average_shortest_path_length(self._graph)

    def total_lanes(self) -> int:
        """Total physical lanes across all links (the paper's lane budget)."""
        return sum(link.num_lanes for link in self._links.values())

    def total_active_lanes(self) -> int:
        """Total lanes currently carrying traffic."""
        return sum(link.num_active_lanes for link in self._links.values())

    def total_link_power_watts(self) -> float:
        """Total power of all lane bundles."""
        return sum(link.power_watts for link in self._links.values())

    def bisection_bandwidth_bps(self) -> float:
        """Capacity crossing a balanced bisection of the endpoints.

        Computed by splitting the endpoint list in half (insertion order,
        which for grid builders corresponds to a physical left/right split)
        and summing the capacity of links crossing the cut.  This is the
        simple estimator used in the evaluation; it is exact for the
        symmetric topologies the builders produce.
        """
        endpoints = self.endpoints()
        half = set(endpoints[: len(endpoints) // 2])
        crossing = 0.0
        for (a, b), link in self._links.items():
            if (a in half) != (b in half):
                crossing += link.capacity_bps
        return crossing

    # ------------------------------------------------------------------ #
    # Conversion helpers
    # ------------------------------------------------------------------ #
    def directed_capacities(self) -> Dict[Tuple[str, str], float]:
        """Per-direction capacities for the fluid simulator.

        Every full-duplex link contributes two directed entries with the
        full bundle capacity each.
        """
        capacities: Dict[Tuple[str, str], float] = {}
        for (a, b), link in self._links.items():
            capacities[(a, b)] = link.capacity_bps
            capacities[(b, a)] = link.capacity_bps
        return capacities

    def copy(self, name: Optional[str] = None) -> "Topology":
        """A deep-ish copy: node objects are shared, link objects are rebuilt
        with fresh lanes in the same configuration."""
        clone = Topology(name=name if name is not None else f"{self.name}-copy")
        clone.kind = self.kind
        clone.dimensions = dict(self.dimensions)
        for node in self.nodes():
            clone.add_node(node)
        for (a, b), link in self._links.items():
            clone.add_link(
                Link(
                    a=a,
                    b=b,
                    num_lanes=link.num_lanes,
                    lane_rate_bps=link.lanes[0].rate_bps if link.lanes else 25 * GBPS,
                    fec=link.fec,
                    length_meters=link.length_meters,
                    media=link.media,
                )
            )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)}, lanes={self.total_lanes()})"
        )


class TopologyBuilder:
    """Factory of the standard experiment topologies.

    All builders share the keyword arguments:

    * ``lanes_per_link`` / ``lane_rate_bps`` -- the lane bundle of every edge,
    * ``fec`` -- initial FEC scheme,
    * ``media`` / ``spacing_meters`` -- cable model,
    * ``node_type`` / ``nic_rate_bps`` -- endpoint sled parameters.
    """

    def __init__(
        self,
        lanes_per_link: int = 2,
        lane_rate_bps: float = 25 * GBPS,
        fec: FecScheme = FEC_RS528,
        media: Media = COPPER_DAC,
        spacing_meters: float = DEFAULT_SPACING_METERS,
        node_type: NodeType = NodeType.COMPUTE,
        nic_rate_bps: float = 100 * GBPS,
    ) -> None:
        if lanes_per_link <= 0:
            raise ValueError("lanes_per_link must be positive")
        if spacing_meters <= 0:
            raise ValueError("spacing_meters must be positive")
        self.lanes_per_link = lanes_per_link
        self.lane_rate_bps = lane_rate_bps
        self.fec = fec
        self.media = media
        self.spacing_meters = spacing_meters
        self.node_type = node_type
        self.nic_rate_bps = nic_rate_bps

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _make_node(
        self,
        name: str,
        position: Optional[Tuple[int, int]] = None,
        node_type: Optional[NodeType] = None,
        radix: int = 8,
    ) -> Node:
        return Node(
            name=name,
            node_type=node_type if node_type is not None else self.node_type,
            nic_rate_bps=self.nic_rate_bps,
            radix=radix,
            position=position,
        )

    def _make_link(
        self,
        topology: Topology,
        a: str,
        b: str,
        lanes_per_link: Optional[int] = None,
        length_meters: Optional[float] = None,
    ) -> Link:
        if length_meters is None:
            length_meters = topology.node(a).distance_to(
                topology.node(b), self.spacing_meters
            )
        link = Link(
            a=a,
            b=b,
            num_lanes=lanes_per_link if lanes_per_link is not None else self.lanes_per_link,
            lane_rate_bps=self.lane_rate_bps,
            fec=self.fec,
            length_meters=length_meters,
            media=self.media,
        )
        return topology.add_link(link)

    # ------------------------------------------------------------------ #
    # Basic shapes
    # ------------------------------------------------------------------ #
    def line(self, num_nodes: int, name: str = "line") -> Topology:
        """A linear chain ``n0 - n1 - ... -- the Figure 1 multi-hop path."""
        if num_nodes < 2:
            raise ValueError("a line needs at least 2 nodes")
        topology = Topology(name=name)
        for index in range(num_nodes):
            topology.add_node(self._make_node(f"n{index}", position=(0, index)))
        for index in range(num_nodes - 1):
            self._make_link(topology, f"n{index}", f"n{index + 1}")
        return topology

    def ring(self, num_nodes: int, name: str = "ring") -> Topology:
        """A cycle of *num_nodes* sleds."""
        if num_nodes < 3:
            raise ValueError("a ring needs at least 3 nodes")
        topology = self.line(num_nodes, name=name)
        self._make_link(topology, f"n{num_nodes - 1}", "n0")
        return topology

    def grid(
        self,
        rows: int,
        columns: int,
        wraparound: bool = False,
        name: Optional[str] = None,
    ) -> Topology:
        """A 2-D grid of sleds; with *wraparound* it becomes a 2-D torus.

        Node names are ``n{row}x{column}`` so that the grid and torus built
        with the same dimensions share an identical node set -- this is what
        lets the Figure 2 experiment reconfigure one into the other.
        """
        if rows < 2 or columns < 2:
            raise ValueError("grid needs at least 2x2 nodes")
        if name is None:
            name = f"{'torus' if wraparound else 'grid'}-{rows}x{columns}"
        topology = Topology(name=name)
        for row in range(rows):
            for column in range(columns):
                topology.add_node(
                    self._make_node(self.grid_node_name(row, column), position=(row, column))
                )
        for row in range(rows):
            for column in range(columns):
                here = self.grid_node_name(row, column)
                if column + 1 < columns:
                    self._make_link(topology, here, self.grid_node_name(row, column + 1))
                if row + 1 < rows:
                    self._make_link(topology, here, self.grid_node_name(row + 1, column))
        if wraparound:
            for row, column_pair in self.torus_wraparound_pairs(rows, columns):
                self._make_link(topology, row, column_pair)
        topology.kind = "torus" if wraparound else "grid"
        topology.dimensions = {"rows": rows, "columns": columns}
        return topology

    def torus(self, rows: int, columns: int, name: Optional[str] = None) -> Topology:
        """A 2-D torus (grid plus wraparound links)."""
        return self.grid(rows, columns, wraparound=True, name=name)

    @staticmethod
    def grid_node_name(row: int, column: int) -> str:
        """Canonical name of the sled at ``(row, column)``."""
        return f"n{row}x{column}"

    @staticmethod
    def torus_wraparound_pairs(rows: int, columns: int) -> List[Tuple[str, str]]:
        """The extra edges a torus has over a grid of the same dimensions.

        The Closed Ring Control uses this as the reconfiguration plan for
        the Figure 2 scenario: these are exactly the links it must create
        from the lanes it harvests by thinning the grid links.
        """
        pairs: List[Tuple[str, str]] = []
        if columns > 2:
            for row in range(rows):
                pairs.append(
                    (
                        TopologyBuilder.grid_node_name(row, 0),
                        TopologyBuilder.grid_node_name(row, columns - 1),
                    )
                )
        if rows > 2:
            for column in range(columns):
                pairs.append(
                    (
                        TopologyBuilder.grid_node_name(0, column),
                        TopologyBuilder.grid_node_name(rows - 1, column),
                    )
                )
        return pairs

    def full_mesh(self, num_nodes: int, name: str = "mesh") -> Topology:
        """Every sled directly connected to every other sled."""
        if num_nodes < 2:
            raise ValueError("a mesh needs at least 2 nodes")
        topology = Topology(name=name)
        for index in range(num_nodes):
            topology.add_node(self._make_node(f"n{index}", position=(0, index)))
        for a, b in itertools.combinations(range(num_nodes), 2):
            self._make_link(topology, f"n{a}", f"n{b}")
        return topology

    def star(self, num_hosts: int, name: str = "star") -> Topology:
        """All sleds hanging off one central switch (a single ToR)."""
        if num_hosts < 2:
            raise ValueError("a star needs at least 2 hosts")
        topology = Topology(name=name)
        hub = self._make_node("tor0", node_type=NodeType.SWITCH, radix=num_hosts)
        topology.add_node(hub)
        for index in range(num_hosts):
            topology.add_node(self._make_node(f"n{index}", position=(0, index)))
            self._make_link(topology, f"n{index}", "tor0")
        return topology

    def hypercube(self, dimension: int, name: Optional[str] = None) -> Topology:
        """A binary hypercube of 2^*dimension* sleds."""
        if dimension < 1:
            raise ValueError("hypercube dimension must be >= 1")
        if name is None:
            name = f"hypercube-{dimension}"
        count = 2**dimension
        topology = Topology(name=name)
        for index in range(count):
            row, column = divmod(index, int(math.sqrt(count)) or 1)
            topology.add_node(self._make_node(f"n{index}", position=(row, column)))
        for index in range(count):
            for bit in range(dimension):
                neighbour = index ^ (1 << bit)
                if neighbour > index:
                    self._make_link(topology, f"n{index}", f"n{neighbour}")
        return topology

    def fat_tree(self, pods: int = 4, name: Optional[str] = None) -> Topology:
        """A small folded-Clos (k-ary fat-tree) used as the over-provisioned
        packet-switched baseline.

        ``pods`` must be even.  Hosts: ``pods^3 / 4``; edge and aggregation
        switches: ``pods^2 / 2`` each... at rack scale a 4-ary fat-tree (16
        hosts, 20 switches) is already generous.
        """
        if pods < 2 or pods % 2 != 0:
            raise ValueError("pods must be an even number >= 2")
        if name is None:
            name = f"fat-tree-{pods}"
        half = pods // 2
        topology = Topology(name=name)

        core_switches = []
        for index in range(half * half):
            switch_name = f"core{index}"
            topology.add_node(self._make_node(switch_name, node_type=NodeType.SWITCH, radix=pods))
            core_switches.append(switch_name)

        host_index = 0
        for pod in range(pods):
            aggregation = []
            edge = []
            for index in range(half):
                agg_name = f"agg{pod}_{index}"
                topology.add_node(self._make_node(agg_name, node_type=NodeType.SWITCH, radix=pods))
                aggregation.append(agg_name)
                edge_name = f"edge{pod}_{index}"
                topology.add_node(self._make_node(edge_name, node_type=NodeType.SWITCH, radix=pods))
                edge.append(edge_name)
            for agg_name in aggregation:
                for edge_name in edge:
                    self._make_link(topology, agg_name, edge_name)
            for agg_position, agg_name in enumerate(aggregation):
                for core_position in range(half):
                    core_name = core_switches[agg_position * half + core_position]
                    self._make_link(topology, agg_name, core_name)
            for edge_name in edge:
                for _ in range(half):
                    host_name = f"h{host_index}"
                    host_index += 1
                    topology.add_node(self._make_node(host_name, position=(pod, host_index)))
                    self._make_link(topology, host_name, edge_name)
        topology.kind = "fat-tree"
        topology.dimensions = {"pods": pods}
        return topology

    def dragonfly(
        self,
        groups: int = 4,
        routers_per_group: int = 4,
        hosts_per_router: int = 2,
        name: Optional[str] = None,
    ) -> Topology:
        """A single-level dragonfly: all-to-all routers inside each group,
        exactly one global link between every pair of groups.

        The global link between groups ``i < j`` attaches to router
        ``(j - 1) % a`` in group *i* and router ``i % a`` in group *j*
        (``a`` = routers per group) -- a rotation that spreads the global
        plane across routers, so with ``a >= 2`` some host pairs genuinely
        need the full 5-hop path (host, local router, two global-attached
        routers, local router, host) and the family diameter is exact.
        """
        if groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        if routers_per_group < 1 or hosts_per_router < 1:
            raise ValueError("routers_per_group and hosts_per_router must be >= 1")
        if name is None:
            name = f"dragonfly-{groups}x{routers_per_group}x{hosts_per_router}"
        topology = Topology(name=name)
        for group in range(groups):
            for router in range(routers_per_group):
                topology.add_node(
                    self._make_node(
                        self.dragonfly_router_name(group, router),
                        node_type=NodeType.SWITCH,
                        radix=routers_per_group - 1 + groups - 1 + hosts_per_router,
                    )
                )
        for group in range(groups):
            for router in range(routers_per_group):
                router_name = self.dragonfly_router_name(group, router)
                for host in range(hosts_per_router):
                    host_name = f"h{group}_{router}_{host}"
                    topology.add_node(self._make_node(host_name))
                    self._make_link(topology, host_name, router_name)
        for group in range(groups):
            for a, b in itertools.combinations(range(routers_per_group), 2):
                self._make_link(
                    topology,
                    self.dragonfly_router_name(group, a),
                    self.dragonfly_router_name(group, b),
                )
        for a, b in self.dragonfly_global_pairs(groups, routers_per_group):
            self._make_link(topology, a, b)
        topology.kind = "dragonfly"
        topology.dimensions = {
            "groups": groups,
            "routers_per_group": routers_per_group,
            "hosts_per_router": hosts_per_router,
        }
        return topology

    @staticmethod
    def dragonfly_router_name(group: int, router: int) -> str:
        """Canonical name of dragonfly router *router* in *group*."""
        return f"r{group}_{router}"

    @staticmethod
    def dragonfly_global_pairs(groups: int, routers_per_group: int) -> List[Tuple[str, str]]:
        """The one global link per group pair, with rotated attachment.

        This is both the builder's wiring list and the reference point of
        the dragonfly re-homing move: the candidate re-deploys harvested
        local lanes as additional global links attached one router over.
        """
        pairs: List[Tuple[str, str]] = []
        for i, j in itertools.combinations(range(groups), 2):
            pairs.append(
                (
                    TopologyBuilder.dragonfly_router_name(i, (j - 1) % routers_per_group),
                    TopologyBuilder.dragonfly_router_name(j, i % routers_per_group),
                )
            )
        return pairs

    # ------------------------------------------------------------------ #
    # Named registry (used by the CLI and experiment configs)
    # ------------------------------------------------------------------ #
    def by_name(self, kind: str, **kwargs) -> Topology:
        """Build a topology by its string name (``grid``, ``torus``, ...)."""
        builders: Dict[str, Callable[..., Topology]] = {
            "line": self.line,
            "ring": self.ring,
            "grid": self.grid,
            "torus": self.torus,
            "mesh": self.full_mesh,
            "star": self.star,
            "hypercube": self.hypercube,
            "fat-tree": self.fat_tree,
            "dragonfly": self.dragonfly,
        }
        if kind not in builders:
            raise KeyError(f"unknown topology kind {kind!r}; known: {sorted(builders)}")
        return builders[kind](**kwargs)
