"""Fabric assembly: topology + switching elements + power + bypass.

The :class:`Fabric` is the object the Closed Ring Control observes and
mutates.  It owns:

* the :class:`~repro.fabric.topology.Topology` (nodes and lane bundles),
* one switching element per node (the embedded cut-through element of each
  sled's NIC, or the dedicated switch ASIC for switch nodes),
* the :class:`~repro.phy.power.PowerModel` and a :class:`PowerBudget`,
* the :class:`~repro.phy.bypass.BypassManager` for PLP primitive 2,
* per-link statistics streams feeding the CRC.

It also provides the closed-form end-to-end latency of a packet along a
path, which is the quantity Figure 1 plots and the quantity the analytical
validation (experiment E6) compares against the packet-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.node import NodeType
from repro.fabric.routing import Router, RoutingPolicy, WeightFn, hop_weight, path_links
from repro.fabric.switch import CutThroughSwitch, StoreAndForwardSwitch, SwitchModel
from repro.fabric.topology import Topology
from repro.phy.bypass import BypassManager
from repro.phy.power import PowerBudget, PowerModel, PowerReport
from repro.phy.stats import LinkStatistics


@dataclass
class FabricConfig:
    """Static configuration of a fabric instance."""

    switch_model: SwitchModel = field(default_factory=SwitchModel)
    power_model: PowerModel = field(default_factory=PowerModel)
    #: Use store-and-forward switching elements instead of cut-through
    #: (pessimistic baseline for the Figure 1 comparison).
    store_and_forward: bool = False
    #: Maximum simultaneous bypass circuits (None = unlimited).
    max_bypass_circuits: Optional[int] = 8
    #: Rack power cap in watts (None = uncapped).
    power_cap_watts: Optional[float] = None
    #: Routing policy used by the default router.
    routing_policy: RoutingPolicy = RoutingPolicy.SHORTEST


class Fabric:
    """A rack fabric: the unit the CRC controls."""

    def __init__(self, topology: Topology, config: Optional[FabricConfig] = None) -> None:
        self.topology = topology
        self.config = config if config is not None else FabricConfig()
        switch_cls = (
            StoreAndForwardSwitch if self.config.store_and_forward else CutThroughSwitch
        )
        self._switches: Dict[str, CutThroughSwitch] = {
            node.name: switch_cls(node.name, self.config.switch_model)
            for node in topology.nodes()
        }
        self.bypasses = BypassManager(max_circuits=self.config.max_bypass_circuits)
        self.power_budget = PowerBudget(cap_watts=self.config.power_cap_watts)
        self.link_stats: Dict[Tuple[str, str], LinkStatistics] = {
            key: LinkStatistics(link_key=key) for key in topology.link_keys()
        }
        self.router = Router(
            topology, weight_fn=hop_weight, policy=self.config.routing_policy
        )

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def switch(self, name: str) -> CutThroughSwitch:
        """The switching element embedded in (or constituting) node *name*."""
        return self._switches[name]

    def switches(self) -> Dict[str, CutThroughSwitch]:
        """All switching elements keyed by node name."""
        return dict(self._switches)

    def stats_for(self, a: str, b: str) -> LinkStatistics:
        """The statistics stream of the link joining *a* and *b*.

        Streams are created lazily for links added by reconfiguration.
        """
        from repro.fabric.topology import canonical_key

        key = canonical_key(a, b)
        if key not in self.link_stats:
            self.link_stats[key] = LinkStatistics(link_key=key)
        return self.link_stats[key]

    def register_switch(self, name: str) -> CutThroughSwitch:
        """Create a switching element for a node added after construction."""
        if name not in self._switches:
            switch_cls = (
                StoreAndForwardSwitch
                if self.config.store_and_forward
                else CutThroughSwitch
            )
            self._switches[name] = switch_cls(name, self.config.switch_model)
        return self._switches[name]

    # ------------------------------------------------------------------ #
    # Closed-form path latency (Figure 1 and the E6 validation)
    # ------------------------------------------------------------------ #
    def path_latency(
        self,
        path: Sequence[str],
        packet_size_bits: float,
        include_source_serialization: bool = True,
    ) -> Dict[str, float]:
        """Latency breakdown of one packet along *path* on an idle fabric.

        Returns a dictionary with the components:

        * ``serialization`` -- clocking the packet onto the first link (for a
          cut-through fabric the payload then streams through and is never
          re-serialised; a store-and-forward fabric re-pays it per hop, which
          the switch model accounts for inside ``switching``),
        * ``propagation`` -- media delay summed over every link,
        * ``switching`` -- forwarding latency of every *intermediate*
          switching element (the destination does not forward),
        * ``phy`` -- SerDes plus FEC latency of every link on the path,
        * ``total`` -- sum of the above.

        The path must contain at least two nodes.
        """
        if len(path) < 2:
            raise ValueError("a path needs at least a source and a destination")
        links = path_links(self.topology, path)
        serialization = 0.0
        if include_source_serialization:
            serialization = links[0].serialization_delay(packet_size_bits)
        propagation = sum(link.propagation_delay for link in links)
        phy = sum(link.phy_latency for link in links)
        switching = 0.0
        for intermediate in path[1:-1]:
            switching += self._switches[intermediate].forwarding_latency(packet_size_bits)
        total = serialization + propagation + switching + phy
        return {
            "serialization": serialization,
            "propagation": propagation,
            "switching": switching,
            "phy": phy,
            "total": total,
        }

    def end_to_end_latency(
        self, src: str, dst: str, packet_size_bits: float
    ) -> Dict[str, float]:
        """Closed-form latency breakdown along the routed path for the pair."""
        path = self.router.path(src, dst)
        return self.path_latency(path, packet_size_bits)

    # ------------------------------------------------------------------ #
    # Power accounting
    # ------------------------------------------------------------------ #
    def power_report(self) -> PowerReport:
        """Instantaneous fabric power, broken down by component class."""
        model = self.config.power_model
        report = PowerReport()
        report.links_watts = self.topology.total_link_power_watts()
        for node in self.topology.nodes():
            active_ports = self.topology.degree(node.name)
            if node.node_type is NodeType.SWITCH:
                report.switches_watts += model.switch_power(active_ports)
            else:
                # Endpoint sleds: the NIC plus its embedded switching element,
                # charged per active lane on every attached fabric port so
                # that gating lanes off actually recovers power.
                report.nics_watts += model.nic_base_watts
                attached_active_lanes = sum(
                    self.topology.link_between(node.name, neighbour).num_active_lanes
                    for neighbour in self.topology.neighbors(node.name)
                )
                report.switches_watts += (
                    attached_active_lanes * model.switch_port_lane_watts
                )
        report.bypass_watts = (
            len(self.bypasses.active_circuits()) * model.bypass_circuit_watts
        )
        return report

    def record_power(self, time: float) -> PowerReport:
        """Sample the power report into the budget tracker."""
        report = self.power_report()
        self.power_budget.record(time, report.total_watts)
        return report

    # ------------------------------------------------------------------ #
    # Fluid-simulation interface
    # ------------------------------------------------------------------ #
    def directed_capacities(self) -> Dict[Tuple[str, str], float]:
        """Per-direction link capacities for the fluid simulator."""
        return self.topology.directed_capacities()

    def route_keys(self, src: str, dst: str, flow_id: Optional[int] = None) -> List[Tuple[str, str]]:
        """Directed link keys of the routed path for a flow."""
        path = self.router.path(src, dst, flow_id=flow_id)
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    # ------------------------------------------------------------------ #
    # Reconfiguration hooks (called by the PLP executor)
    # ------------------------------------------------------------------ #
    def invalidate_routes(self) -> None:
        """Drop routing caches after the topology or link costs changed."""
        self.router.invalidate()

    def set_router_weight(self, weight_fn: WeightFn) -> None:
        """Install a new link-cost function (the CRC's price tags) for routing."""
        self.router.set_weight_fn(weight_fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fabric({self.topology!r})"
