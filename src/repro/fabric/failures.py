"""Failure injection: degraded lanes, failed lanes and failed links.

The CRC's price tags include a *link health* term, and PLP primitive 5
exists precisely so the controller can see lanes going bad before they take
a link down.  This module provides the failure side of that story for
experiments and tests:

* :class:`FailureEvent` -- a scheduled degradation or failure,
* :class:`FailureInjector` -- applies events to a fabric at the right
  simulation times, either driven explicitly (``apply_due``) or registered
  as a controller on the fluid simulator so failures land mid-run,
* :func:`random_failure_plan` -- draws a reproducible set of failure events
  for soak-style experiments.

Failures interact with the rest of the system exactly as real ones would:
a degraded lane raises the link's worst raw BER (the adaptive-FEC policy
reacts), a failed lane shrinks the bundle's capacity, and a failed link
drops its capacity to zero (routing and the CRC must steer around it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.fabric.fabric import Fabric
from repro.fabric.topology import canonical_key
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.random import RandomStreams


class FailureKind(enum.Enum):
    """What goes wrong."""

    #: One lane's raw BER degrades by a multiplicative factor.
    LANE_DEGRADATION = "lane-degradation"
    #: One lane fails outright (capacity loss, bundle stays up).
    LANE_FAILURE = "lane-failure"
    #: Every lane of the link fails (the link goes dark).
    LINK_FAILURE = "link-failure"
    #: The link recovers: failed lanes are replaced by fresh ones.
    LINK_RECOVERY = "link-recovery"


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure (or recovery) on a link."""

    time: float
    kind: FailureKind
    endpoints: Tuple[str, str]
    #: Multiplier applied to the lane's raw BER for LANE_DEGRADATION.
    degradation_factor: float = 1_000.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if len(self.endpoints) != 2 or self.endpoints[0] == self.endpoints[1]:
            raise ValueError("endpoints must be two distinct node names")
        if self.degradation_factor <= 1.0:
            raise ValueError("degradation_factor must be > 1")


class FailureInjector:
    """Applies failure events to a fabric in time order."""

    def __init__(self, fabric: Fabric, events: Sequence[FailureEvent]) -> None:
        self.fabric = fabric
        self.events: List[FailureEvent] = sorted(events, key=lambda e: e.time)
        self.applied: List[FailureEvent] = []
        self._next_index = 0

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Events not yet applied."""
        return len(self.events) - self._next_index

    def apply_due(self, now: float) -> List[FailureEvent]:
        """Apply every event whose time has arrived; returns those applied."""
        applied_now: List[FailureEvent] = []
        while self._next_index < len(self.events) and self.events[self._next_index].time <= now:
            event = self.events[self._next_index]
            self._next_index += 1
            self._apply(event)
            self.applied.append(event)
            applied_now.append(event)
        return applied_now

    def _apply(self, event: FailureEvent) -> None:
        key = canonical_key(*event.endpoints)
        if not self.fabric.topology.has_link(*key):
            return  # The link was reconfigured away; nothing to fail.
        link = self.fabric.topology.link_between(*key)
        if event.kind is FailureKind.LANE_DEGRADATION:
            lanes = link.active_lanes or link.lanes
            worst = lanes[0]
            worst.raw_ber = min(0.5, worst.raw_ber * event.degradation_factor)
        elif event.kind is FailureKind.LANE_FAILURE:
            active = link.active_lanes
            if active:
                active[0].fail()
        elif event.kind is FailureKind.LINK_FAILURE:
            for lane in link.lanes:
                lane.fail()
        elif event.kind is FailureKind.LINK_RECOVERY:
            from repro.phy.lane import Lane, LaneState

            replacements = []
            for lane in link.lanes:
                if lane.state is LaneState.FAILED:
                    replacements.append(
                        Lane(
                            rate_bps=lane.rate_bps,
                            media=lane.media,
                            length_meters=lane.length_meters,
                        )
                    )
            if replacements and len(replacements) < link.num_lanes:
                link.remove_lanes(len(replacements))
                link.add_lanes(replacements)
            elif replacements:
                # Every lane failed: rebuild the bundle in place.
                for lane, _replacement in zip(link.lanes, replacements):
                    lane.state = LaneState.ACTIVE
                    lane.raw_ber = 1e-12

    # ------------------------------------------------------------------ #
    # Fluid-simulation hookup
    # ------------------------------------------------------------------ #
    def attach(self, simulator: FluidFlowSimulator, period: float = 1e-4) -> None:
        """Drive the injector from the fluid simulation clock.

        On every tick, due failures are applied to the fabric and the
        affected link capacities are pushed into the fluid simulator so
        active flows immediately feel the loss.
        """
        if period <= 0:
            raise ValueError("period must be positive")

        def callback(sim: FluidFlowSimulator, now: float) -> None:
            applied = self.apply_due(now)
            if not applied:
                return
            for event in applied:
                key = canonical_key(*event.endpoints)
                if not self.fabric.topology.has_link(*key):
                    continue
                link = self.fabric.topology.link_between(*key)
                for directed in ((key[0], key[1]), (key[1], key[0])):
                    if sim.has_link(directed):
                        sim.set_capacity(directed, link.capacity_bps)

        simulator.add_controller(period, callback, start_offset=period)

    def summary(self) -> Dict[str, int]:
        """Counts of applied events by kind."""
        counts: Dict[str, int] = {}
        for event in self.applied:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts


def random_failure_plan(
    fabric: Fabric,
    seed: int,
    num_events: int = 5,
    horizon: float = 1.0,
    kinds: Sequence[FailureKind] = (
        FailureKind.LANE_DEGRADATION,
        FailureKind.LANE_FAILURE,
    ),
) -> List[FailureEvent]:
    """Draw a reproducible random failure plan over the fabric's links."""
    if num_events < 0:
        raise ValueError("num_events must be >= 0")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not kinds:
        raise ValueError("at least one failure kind is required")
    streams = RandomStreams(seed)
    link_keys = fabric.topology.link_keys()
    events: List[FailureEvent] = []
    for _index in range(num_events):
        key = streams.choice("failure-link", link_keys)
        kind = streams.choice("failure-kind", list(kinds))
        time = streams.uniform("failure-time", 0.0, horizon)
        events.append(FailureEvent(time=time, kind=kind, endpoints=key))
    return sorted(events, key=lambda e: e.time)
