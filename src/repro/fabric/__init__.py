"""Rack fabric substrate: nodes, switches, topologies, routing and assembly.

A rack-scale system in the paper's sense is a dense collection of
disaggregated sleds (compute, NVMe storage, DRAM, accelerators) joined by a
direct-connect fabric in which every sled's NIC also forwards transit
traffic through an embedded cut-through switching element.  This package
provides those building blocks, the topology builders (grid, torus, ring,
mesh, fat-tree, dragonfly, hypercube) the experiments reconfigure between,
and the topology-family registry (:mod:`repro.fabric.topologies`) that
scenarios and the CLI resolve fabrics through by name.
"""

from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    random_failure_plan,
)
from repro.fabric.node import Node, NodeType
from repro.fabric.packetsim import PacketBackend, PacketLevelNetwork, PortState
from repro.fabric.routing import (
    Router,
    RoutingPolicy,
    ecmp_paths,
    k_shortest_paths,
    shortest_path,
)
from repro.fabric.switch import CutThroughSwitch, StoreAndForwardSwitch, SwitchModel
from repro.fabric.topologies import (
    TopologyError,
    TopologyFamily,
    TopologyMetadata,
    build_topology_fabric,
    get_topology,
    register_topology,
    topology_catalog,
    topology_metadata,
    topology_names,
)
from repro.fabric.topology import Topology, TopologyBuilder

__all__ = [
    "Fabric",
    "FabricConfig",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "random_failure_plan",
    "Node",
    "NodeType",
    "PacketBackend",
    "PacketLevelNetwork",
    "PortState",
    "Router",
    "RoutingPolicy",
    "ecmp_paths",
    "k_shortest_paths",
    "shortest_path",
    "CutThroughSwitch",
    "StoreAndForwardSwitch",
    "SwitchModel",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
    "TopologyFamily",
    "TopologyMetadata",
    "build_topology_fabric",
    "get_topology",
    "register_topology",
    "topology_catalog",
    "topology_metadata",
    "topology_names",
]
