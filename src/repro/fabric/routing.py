"""Routing over the rack fabric.

The Closed Ring Control treats routing as one of the knobs it turns: every
link carries a *price tag* (see :mod:`repro.core.cost`) and routes are
shortest paths under that price.  This module provides the path computation
primitives -- single shortest path, k-shortest paths, and ECMP path sets --
plus a :class:`Router` that caches paths per topology version and is
invalidated whenever the CRC reconfigures the fabric.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.fabric.topology import Topology
from repro.phy.link import Link

PathType = List[str]
WeightFn = Callable[[Link], float]


class RoutingPolicy(enum.Enum):
    """How the router picks among equal-cost candidates."""

    SHORTEST = "shortest"
    ECMP = "ecmp"
    K_SHORTEST = "k-shortest"


def hop_weight(_: Link) -> float:
    """Weight function that counts hops (every link costs 1)."""
    return 1.0


def latency_weight(link: Link) -> float:
    """Weight function using the link's fixed one-way latency."""
    return link.one_way_latency


def inverse_capacity_weight(link: Link) -> float:
    """Weight function preferring fat links (cost = 1 / capacity)."""
    capacity = link.capacity_bps
    if capacity <= 0:
        return float("inf")
    return 1.0 / capacity


def shortest_path(
    topology: Topology,
    src: str,
    dst: str,
    weight_fn: WeightFn = hop_weight,
) -> PathType:
    """Single shortest path from *src* to *dst* as a list of node names.

    Raises :class:`networkx.NetworkXNoPath` when the nodes are disconnected,
    which callers treat as "the CRC must repair the topology first".
    """
    graph = topology.weighted_graph(weight_fn)
    return nx.shortest_path(graph, src, dst, weight="weight")


def k_shortest_paths(
    topology: Topology,
    src: str,
    dst: str,
    k: int,
    weight_fn: WeightFn = hop_weight,
) -> List[PathType]:
    """Up to *k* loop-free shortest paths in non-decreasing cost order."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    graph = topology.weighted_graph(weight_fn)
    generator = nx.shortest_simple_paths(graph, src, dst, weight="weight")
    return list(itertools.islice(generator, k))


def ecmp_paths(
    topology: Topology,
    src: str,
    dst: str,
    weight_fn: WeightFn = hop_weight,
) -> List[PathType]:
    """All equal-minimum-cost paths between *src* and *dst*."""
    graph = topology.weighted_graph(weight_fn)
    best_cost = nx.shortest_path_length(graph, src, dst, weight="weight")
    paths: List[PathType] = []
    for path in nx.shortest_simple_paths(graph, src, dst, weight="weight"):
        cost = sum(
            graph.edges[path[i], path[i + 1]]["weight"] for i in range(len(path) - 1)
        )
        if cost > best_cost + 1e-12:
            break
        paths.append(path)
    return paths


def path_links(topology: Topology, path: Sequence[str]) -> List[Link]:
    """The link objects along *path* (consecutive node pairs)."""
    return [
        topology.link_between(path[i], path[i + 1]) for i in range(len(path) - 1)
    ]


def path_directed_keys(path: Sequence[str]) -> List[Tuple[str, str]]:
    """Directed ``(upstream, downstream)`` keys along *path*, for the fluid model."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


class Router:
    """Caching path oracle over a topology.

    The router memoises computed paths until :meth:`invalidate` is called.
    The CRC invalidates it after every reconfiguration; workload drivers
    call :meth:`path` for every flow they admit.

    ECMP selection hashes the flow id so that a given flow is pinned to one
    path (per-flow ECMP, no packet reordering), matching what a real rack
    fabric would do.
    """

    def __init__(
        self,
        topology: Topology,
        weight_fn: WeightFn = hop_weight,
        policy: RoutingPolicy = RoutingPolicy.SHORTEST,
        k: int = 4,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k!r}")
        self.topology = topology
        self.weight_fn = weight_fn
        self.policy = policy
        self.k = k
        self._cache: Dict[Tuple[str, str], List[PathType]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop all cached paths (topology or prices changed)."""
        self._cache.clear()
        self.invalidations += 1

    def set_weight_fn(self, weight_fn: WeightFn) -> None:
        """Replace the link weight function and invalidate the cache."""
        self.weight_fn = weight_fn
        self.invalidate()

    # ------------------------------------------------------------------ #
    # Path queries
    # ------------------------------------------------------------------ #
    def _candidates(self, src: str, dst: str) -> List[PathType]:
        key = (src, dst)
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        self.cache_misses += 1
        if self.policy is RoutingPolicy.SHORTEST:
            candidates = [shortest_path(self.topology, src, dst, self.weight_fn)]
        elif self.policy is RoutingPolicy.ECMP:
            candidates = ecmp_paths(self.topology, src, dst, self.weight_fn)
        else:
            candidates = k_shortest_paths(self.topology, src, dst, self.k, self.weight_fn)
        self._cache[key] = candidates
        return candidates

    def path(self, src: str, dst: str, flow_id: Optional[int] = None) -> PathType:
        """The path a flow from *src* to *dst* should take.

        With multiple candidates (ECMP / k-shortest), the flow id selects one
        deterministically; flows without an id use the first candidate.
        """
        if src == dst:
            raise ValueError("source and destination are the same node")
        candidates = self._candidates(src, dst)
        if len(candidates) == 1 or flow_id is None:
            return candidates[0]
        return candidates[flow_id % len(candidates)]

    def all_paths(self, src: str, dst: str) -> List[PathType]:
        """All candidate paths the router would consider for the pair."""
        return list(self._candidates(src, dst))

    def path_cost(self, path: Sequence[str]) -> float:
        """Total weight of *path* under the current weight function."""
        return sum(self.weight_fn(link) for link in path_links(self.topology, path))

    def hop_count(self, src: str, dst: str) -> int:
        """Number of links on the selected path for the pair."""
        return len(self.path(src, dst)) - 1
