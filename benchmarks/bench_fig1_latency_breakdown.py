"""Benchmark for Figure 1: media propagation vs cut-through switching latency.

Regenerates the paper's Figure 1 series (a switching element every 2 m,
path lengths spanning the rack) and reports how long the closed-form model
takes to produce it.  The qualitative claim under test: switching latency
dominates media latency at every rack-scale distance.
"""

import pytest

from repro.analysis.latency import LatencyModel
from repro.experiments.figures import figure1_rows
from repro.telemetry.report import format_table

DISTANCES = list(range(2, 42, 2))


def _figure1(packet_bytes):
    return figure1_rows(distances_meters=DISTANCES, packet_size_bytes=packet_bytes)


@pytest.mark.parametrize("packet_bytes", [64.0, 1500.0])
def test_figure1_series(benchmark, packet_bytes):
    rows = benchmark(_figure1, packet_bytes)
    assert len(rows) == len(DISTANCES)
    # Switching dominates the media everywhere a switch is traversed.
    for row in rows:
        if row["hops"] >= 1:
            assert row["switching_latency"] > row["media_latency"]
    print()
    print(
        format_table(
            ["distance_m", "hops", "media_latency_s", "switching_latency_s", "ratio"],
            [
                [r["distance_meters"], r["hops"], r["media_latency"], r["switching_latency"], r["ratio"]]
                for r in rows
            ],
            title=f"Figure 1 (packet = {packet_bytes:.0f} B)",
        )
    )


def test_figure1_store_and_forward_comparison(benchmark):
    model = LatencyModel()

    def compute():
        return [
            (
                distance,
                model.end_to_end(distance, 1500)["total"],
                model.end_to_end(distance, 1500, store_and_forward=True)["total"],
            )
            for distance in DISTANCES
        ]

    rows = benchmark(compute)
    for _, cut, snf in rows:
        assert snf >= cut
    print()
    print(
        format_table(
            ["distance_m", "cut_through_s", "store_and_forward_s"],
            rows,
            title="Figure 1 companion: cut-through vs store-and-forward",
        )
    )
