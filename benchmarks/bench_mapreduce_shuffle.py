"""Benchmark E3: the MapReduce shuffle (the paper's motivating example).

"Since a reducer has to wait for data from all mappers, the slowest link
pulls down the performance of an entire system."  The benchmark runs the
``mapreduce-skewed`` scenario through the sweep engine with the CRC off and
on, comparing the shuffle makespan and the straggler ratio on a static grid
against the adaptive fabric, and against the idealised circuit-switched
oracle.
"""

import pytest

from repro.baselines.circuit import OracleCircuitBaseline
from repro.experiments.sweep import SweepRun, execute_runs
from repro.fabric.topology import TopologyBuilder
from repro.sim.units import GBPS, megabytes
from repro.telemetry.report import format_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.mapreduce import MapReduceShuffleWorkload

METRIC_COLUMNS = ["makespan", "mean_fct", "p99_fct", "straggler_ratio"]


def _adaptive_vs_static(rows, columns):
    base = {
        "rows": rows,
        "columns": columns,
        "mean_flow_mb": 2.0,
        "skew_factor": 2.0,
        "control_period_us": 100.0,
    }
    runs = [
        SweepRun("mapreduce-skewed", {**base, "controller": "none"}, base_seed=2),
        SweepRun("mapreduce-skewed", {**base, "controller": "crc"}, base_seed=2),
    ]
    return execute_runs(runs, workers=1)


@pytest.mark.parametrize("dimensions", [(3, 3), (4, 4)])
def test_mapreduce_static_vs_adaptive(benchmark, dimensions):
    rows, columns = dimensions
    result = benchmark.pedantic(_adaptive_vs_static, args=dimensions, rounds=1, iterations=1)
    static, adaptive = (row["metrics"] for row in result)
    assert result[0]["params"]["controller"] == "none"
    assert result[1]["params"]["controller"] == "crc"
    assert adaptive["makespan"] is not None and static["makespan"] is not None
    # The adaptive fabric must not regress the shuffle badly, and the
    # straggler (the paper's headline concern) must not get worse.
    assert adaptive["makespan"] <= static["makespan"] * 1.25
    assert adaptive["straggler_ratio"] <= static["straggler_ratio"] * 1.05
    print()
    print(
        format_table(
            ["configuration"] + METRIC_COLUMNS,
            [
                ["grid-static"] + [static[c] for c in METRIC_COLUMNS],
                ["adaptive-crc"] + [adaptive[c] for c in METRIC_COLUMNS],
            ],
            title=f"MapReduce shuffle, {rows}x{columns} rack",
        )
    )


def test_mapreduce_oracle_circuit_bound(benchmark):
    names = [TopologyBuilder.grid_node_name(r, c) for r in range(4) for c in range(4)]
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(2), seed=2)
    flows = MapReduceShuffleWorkload(spec, skew_factor=2.0).generate()
    oracle = OracleCircuitBaseline(nic_rate_bps=100 * GBPS)
    result = benchmark.pedantic(oracle.run, args=(flows,), rounds=1, iterations=1)
    makespan = result.makespan()
    assert makespan is not None
    assert makespan >= oracle.lower_bound_makespan(flows) * 0.99
    print()
    print(f"oracle circuit shuffle makespan: {makespan:.6f} s")
