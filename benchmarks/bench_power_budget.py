"""Benchmark E5: operating inside a strict rack power budget.

The paper names power as the binding constraint of rack-scale systems.  The
benchmark (a) sweeps the fraction of active lanes and reports fabric power,
and (b) runs a storage workload under a CRC whose power-cap policy must
shed lanes to respect a sweep of power caps, reporting the throughput cost.
"""

import pytest

from repro.analysis.power import lane_power_sweep, rack_power_estimate
from repro.core.crc import CRCConfig
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.sim.units import megabytes, microseconds
from repro.telemetry.report import format_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.uniform import UniformRandomWorkload


def test_lane_power_sweep(benchmark):
    fabric = build_grid_fabric(4, 4, lanes_per_link=4)
    fractions = [1.0, 0.75, 0.5, 0.25]
    rows = benchmark.pedantic(lane_power_sweep, args=(fabric, fractions), rounds=1, iterations=1)
    watts = [row["total_watts"] for row in rows]
    assert all(earlier > later for earlier, later in zip(watts, watts[1:]))
    print()
    print(
        format_table(
            ["active_lane_fraction", "active_lanes", "links_watts", "total_watts"],
            [[r["active_lane_fraction"], r["active_lanes"], r["links_watts"], r["total_watts"]] for r in rows],
            title="Fabric power vs fraction of active lanes (4x4 grid, 4 lanes/link)",
        )
    )


def test_rack_power_estimate_scaling(benchmark):
    def compute():
        return [
            rack_power_estimate(num_nodes=n * n, links=2 * n * (n - 1), lanes_per_link=2)
            for n in (4, 8, 16)
        ]

    rows = benchmark(compute)
    totals = [row["total_watts"] for row in rows]
    assert totals == sorted(totals)
    print()
    print(
        format_table(
            ["rack_dim", "lanes_watts", "nic_watts", "port_watts", "total_watts"],
            [
                [f"{n}x{n}", r["lanes_watts"], r["nic_watts"], r["port_watts"], r["total_watts"]]
                for n, r in zip((4, 8, 16), rows)
            ],
            title="Closed-form fabric power vs rack size",
        )
    )


def _run_capped(cap_fraction):
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    uncapped = fabric.power_report().total_watts
    cap = uncapped * cap_fraction
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(1), seed=6)
    flows = UniformRandomWorkload(spec, num_flows=30).generate()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=f"cap-{cap_fraction}",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    power_cap_watts=cap,
                    enable_bypass=False,
                    enable_adaptive_fec=False,
                    control_period=microseconds(200),
                ),
            },
        )
    )
    return {
        "cap_fraction": cap_fraction,
        "cap_watts": cap,
        "final_watts": fabric.power_report().total_watts,
        "active_lanes": fabric.topology.total_active_lanes(),
        "makespan": record.makespan,
    }


@pytest.mark.parametrize("cap_fraction", [1.0, 0.9, 0.8])
def test_power_cap_sweep(benchmark, cap_fraction):
    row = benchmark.pedantic(_run_capped, args=(cap_fraction,), rounds=1, iterations=1)
    assert row["makespan"] is not None
    assert row["final_watts"] <= row["cap_watts"] * 1.02
    print()
    print(
        format_table(
            ["cap_fraction", "cap_watts", "final_watts", "active_lanes", "makespan"],
            [[row[c] for c in ("cap_fraction", "cap_watts", "final_watts", "active_lanes", "makespan")]],
            title="CRC power-cap policy under uniform traffic (3x3 grid)",
        )
    )
