"""Benchmark for Figure 2: CRC-driven grid-to-torus reconfiguration.

Runs the paper's Figure 2 scenario end to end: a 4x4 grid at two lanes per
link comes under congestion, the Closed Ring Control harvests lanes and
creates the torus wrap-around links at one lane per link.  The reported
rows compare the static grid, the adaptive fabric and the static torus on
hop counts, per-packet latency, fabric power and workload makespan.
"""

import pytest

from repro.experiments.figures import figure2_rows
from repro.sim.units import megabytes
from repro.telemetry.report import format_table

COLUMNS = [
    "configuration",
    "links",
    "active_lanes",
    "diameter_hops",
    "mean_hops",
    "mean_latency",
    "max_latency",
    "fabric_power_watts",
    "makespan",
    "reconfigurations",
]


def _run(rows, columns):
    return figure2_rows(
        rows=rows, columns=columns, flow_size_bits=megabytes(2), seed=1, workload="hotspot"
    )


@pytest.mark.parametrize("dimensions", [(3, 3), (4, 4)])
def test_figure2_grid_to_torus(benchmark, dimensions):
    rows, columns = dimensions
    result = benchmark.pedantic(_run, args=(rows, columns), rounds=1, iterations=1)
    by_config = {row["configuration"]: row for row in result}
    grid = by_config["grid-static"]
    adaptive = by_config["adaptive-crc"]
    torus = by_config["torus-static"]
    # The paper's claims: the CRC reconfigures the grid into the torus,
    # cutting switch traversals on the critical path and lighting fewer
    # lanes, within the same physical lane budget.
    assert adaptive["reconfigurations"] >= 1
    assert adaptive["diameter_hops"] == torus["diameter_hops"] < grid["diameter_hops"]
    assert adaptive["max_latency"] < grid["max_latency"]
    assert adaptive["fabric_power_watts"] < grid["fabric_power_watts"]
    print()
    print(
        format_table(
            COLUMNS,
            [[row[c] for c in COLUMNS] for row in result],
            title=f"Figure 2 ({rows}x{columns} rack)",
        )
    )
