"""Benchmark for Figure 2: CRC-driven grid-to-torus reconfiguration.

Runs the paper's Figure 2 scenario end to end through the sweep engine: the
``hotspot-diagonal`` scenario is swept over the three fabric configurations
the figure compares (static grid at two lanes per link, CRC-adaptive grid,
static torus at one lane per link).  The reported rows compare hop counts,
per-packet latency, fabric power and workload makespan.
"""

import pytest

from repro.experiments.figures import FIGURE2_CONFIGURATIONS
from repro.experiments.sweep import SweepRun, execute_runs, filter_rows
from repro.telemetry.report import format_table

COLUMNS = [
    "links",
    "active_lanes",
    "diameter_hops",
    "mean_hops",
    "mean_latency",
    "max_latency",
    "fabric_power_watts",
    "makespan",
    "reconfigurations",
]

CONFIGURATIONS = FIGURE2_CONFIGURATIONS


def _run(rows, columns):
    base = {"rows": rows, "columns": columns, "mean_flow_mb": 2.0}
    runs = [
        SweepRun("hotspot-diagonal", {**base, **overrides}, base_seed=1)
        for _, overrides in CONFIGURATIONS
    ]
    return execute_runs(runs, workers=1)


def _by_config(result):
    labelled = {}
    for (label, overrides), row in zip(CONFIGURATIONS, result):
        # The sweep rows carry full provenance; check the label mapping holds.
        assert filter_rows([row], scenario="hotspot-diagonal", **overrides)
        labelled[label] = row["metrics"]
    return labelled


@pytest.mark.parametrize("dimensions", [(3, 3), (4, 4)])
def test_figure2_grid_to_torus(benchmark, dimensions):
    rows, columns = dimensions
    result = benchmark.pedantic(_run, args=(rows, columns), rounds=1, iterations=1)
    by_config = _by_config(result)
    grid = by_config["grid-static"]
    adaptive = by_config["adaptive-crc"]
    torus = by_config["torus-static"]
    # The paper's claims: the CRC reconfigures the grid into the torus,
    # cutting switch traversals on the critical path and lighting fewer
    # lanes, within the same physical lane budget.
    assert adaptive["reconfigurations"] >= 1
    assert adaptive["diameter_hops"] == torus["diameter_hops"] < grid["diameter_hops"]
    assert adaptive["max_latency"] < grid["max_latency"]
    assert adaptive["fabric_power_watts"] < grid["fabric_power_watts"]
    print()
    print(
        format_table(
            ["configuration"] + COLUMNS,
            [
                [label] + [by_config[label][c] for c in COLUMNS]
                for label in ("grid-static", "adaptive-crc", "torus-static")
            ],
            title=f"Figure 2 ({rows}x{columns} rack)",
        )
    )
