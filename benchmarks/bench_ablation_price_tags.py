"""Benchmark A1: ablation of the CRC's price-tag weighting.

The per-link price is a weighted sum of latency, congestion, health and
power terms.  The ablation routes a permutation+hotspot mix under each
weighting and reports the resulting makespan and peak link utilisation:
congestion-aware pricing should spread load better than latency-only.
"""

import pytest

from repro.core.cost import LinkPriceTagger, PriceWeights
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.sim.units import megabytes
from repro.telemetry.report import format_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload

WEIGHTINGS = {
    "latency-only": PriceWeights.latency_only(),
    "congestion-aware": PriceWeights.congestion_aware(),
    "health-aware": PriceWeights.health_aware(),
    "power-aware": PriceWeights.power_aware(),
}


def _run_with_weights(name):
    weights = WEIGHTINGS[name]
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(2), seed=13)
    flows = HotspotWorkload(
        spec, num_flows=24, hot_fraction=0.5,
        hot_pairs=[("n0x0", "n2x2"), ("n0x2", "n2x0")],
    ).generate()
    # Pre-load the router with price-tag weights reflecting the hot pairs'
    # expected load, as the CRC would after one telemetry interval.
    tagger = LinkPriceTagger(weights=weights)
    expected_hot = {("n1x1", "n1x2"): 0.9, ("n0x1", "n1x1"): 0.9}
    fabric.set_router_weight(tagger.weight_fn(expected_hot))
    record = run_experiment(ExperimentSpec(fabric=fabric, flows=flows, label=name))
    utilisation = record.fluid.link_utilisation()
    return {
        "weighting": name,
        "makespan": record.makespan,
        "mean_fct": record.mean_fct,
        "peak_link_utilisation": max(utilisation.values()),
    }


@pytest.mark.parametrize("name", list(WEIGHTINGS))
def test_price_tag_ablation(benchmark, name):
    row = benchmark.pedantic(_run_with_weights, args=(name,), rounds=1, iterations=1)
    assert row["makespan"] is not None
    assert 0 < row["peak_link_utilisation"] <= 1.0 + 1e-9
    print()
    print(
        format_table(
            ["weighting", "makespan", "mean_fct", "peak_link_utilisation"],
            [[row[c] for c in ("weighting", "makespan", "mean_fct", "peak_link_utilisation")]],
            title="Price-tag weighting ablation (hotspot mix, 3x3 grid)",
        )
    )


def test_congestion_aware_pricing_avoids_hot_links(benchmark):
    def compare():
        return (
            _run_with_weights("latency-only"),
            _run_with_weights("congestion-aware"),
        )

    latency_only, congestion_aware = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Congestion-aware pricing must not produce a worse makespan than
    # pricing that ignores congestion entirely.
    assert congestion_aware["makespan"] <= latency_only["makespan"] * 1.05
    print()
    print(
        format_table(
            ["weighting", "makespan", "peak_link_utilisation"],
            [
                [r["weighting"], r["makespan"], r["peak_link_utilisation"]]
                for r in (latency_only, congestion_aware)
            ],
            title="Latency-only vs congestion-aware pricing",
        )
    )
