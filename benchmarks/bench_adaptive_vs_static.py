"""Benchmark: the control loop versus the static baselines.

Runs the dynamic scenarios through the comparison layer
(`repro.experiments.comparison.adaptive_vs_static`): static shortest-path,
per-flow ECMP and the closed control loop all serve bit-identical flows.
The headline assertion is the paper's comparative claim -- on hotspot
traffic the adaptive fabric beats the static one on mean FCT, with at
least one control-loop-initiated reconfiguration doing the work.
"""

import pytest

from repro.experiments.comparison import COMPARISON_LABELS, adaptive_vs_static
from repro.telemetry.report import format_table

COLUMNS = [
    "mean_fct",
    "p99_fct",
    "makespan",
    "straggler_ratio",
    "completion_fraction",
    "reconfigurations",
]


def _report(scenario, rows):
    print()
    print(
        format_table(
            ["label"] + COLUMNS,
            [[row["label"]] + [row[c] for c in COLUMNS] for row in rows],
            title=f"{scenario}: static vs ECMP vs adaptive (identical flows)",
        )
    )


@pytest.mark.parametrize("scenario", ["hotspot_migration", "hotspot-diagonal"])
def test_adaptive_beats_static_on_hotspot(benchmark, scenario):
    rows = benchmark.pedantic(
        adaptive_vs_static, args=(scenario,), rounds=1, iterations=1
    )
    by_label = {row["label"]: row for row in rows}
    assert set(by_label) == set(COMPARISON_LABELS)
    for row in rows:
        assert row["completion_fraction"] == 1.0
    # The comparative claim: reconfiguration + price-based rerouting beat
    # the same hardware left alone.
    assert by_label["adaptive"]["reconfigurations"] >= 1
    assert by_label["adaptive"]["mean_fct"] < by_label["static"]["mean_fct"]
    _report(scenario, rows)


def test_failure_recovery_comparison(benchmark):
    rows = benchmark.pedantic(
        adaptive_vs_static, args=("failure_recovery",), rounds=1, iterations=1
    )
    by_label = {row["label"]: row for row in rows}
    # Everyone eventually drains (the link recovers), but only the adaptive
    # fabric steers flows around the outage while it lasts.
    for row in rows:
        assert row["completion_fraction"] == 1.0
    assert by_label["adaptive"]["mean_fct"] <= by_label["static"]["mean_fct"]
    _report("failure_recovery", rows)
