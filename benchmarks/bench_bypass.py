"""Benchmark E8: high-speed bypass (PLP primitive 2).

A bypass cross-connects two links beneath the packet switches, so packets
on the bypassed path skip every intermediate switching pipeline.  The
benchmark measures per-packet latency for hot node pairs with and without a
bypass, and sweeps the crosspoint budget under a hotspot workload driven by
the CRC's bypass policy.
"""

import pytest

from repro.core.crc import CRCConfig
from repro.core.plp import PLPCommand, PLPCommandType, PLPExecutor
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.topology import TopologyBuilder
from repro.sim.units import bits_from_bytes, megabytes, microseconds
from repro.telemetry.report import format_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload


def _bypass_latency_rows():
    fabric = Fabric(TopologyBuilder(lanes_per_link=2).grid(4, 4), FabricConfig())
    executor = PLPExecutor(fabric)
    src, dst = "n0x0", "n3x3"
    packet_bits = bits_from_bytes(1500)
    path = fabric.router.path(src, dst)
    without = fabric.path_latency(path, packet_bits)["total"]
    links = [fabric.topology.link_between(path[i], path[i + 1]) for i in range(len(path) - 1)]
    executor.execute(
        PLPCommand(
            PLPCommandType.CREATE_BYPASS,
            (src, dst),
            {
                "through": tuple(path[1:-1]),
                "capacity_bps": min(link.capacity_bps for link in links),
                "propagation_delay": sum(link.propagation_delay for link in links),
            },
        )
    )
    circuit = fabric.bypasses.circuit_for(src, dst)
    with_bypass = circuit.transfer_latency(packet_bits)
    return [
        {"path": "packet-switched", "hops": len(path) - 1, "latency": without},
        {"path": "bypass-circuit", "hops": len(circuit.through) + 1, "latency": with_bypass},
    ]


def test_bypass_removes_switching_latency(benchmark):
    rows = benchmark.pedantic(_bypass_latency_rows, rounds=1, iterations=1)
    packet_switched = rows[0]["latency"]
    bypassed = rows[1]["latency"]
    assert bypassed < packet_switched
    print()
    print(
        format_table(
            ["path", "hops", "latency_s"],
            [[r["path"], r["hops"], r["latency"]] for r in rows],
            title="Corner-to-corner 1500 B packet, 4x4 grid",
        )
    )


def _hotspot_with_budget(max_circuits):
    fabric = Fabric(
        TopologyBuilder(lanes_per_link=2).grid(3, 3),
        FabricConfig(max_bypass_circuits=max_circuits),
    )
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(2), seed=8)
    workload = HotspotWorkload(
        spec, num_flows=24, hot_fraction=0.5,
        hot_pairs=[("n0x0", "n2x2"), ("n0x2", "n2x0")],
    )
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=workload.generate(),
            label=f"budget-{max_circuits}",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_bypass=True,
                    enable_adaptive_fec=False,
                    control_period=microseconds(200),
                    bypass_min_demand_bits=megabytes(1),
                ),
            },
        )
    )
    return {
        "max_circuits": max_circuits,
        "circuits_established": fabric.bypasses.total_established,
        "makespan": record.makespan,
    }


@pytest.mark.parametrize("max_circuits", [0, 2, 8])
def test_bypass_budget_sweep(benchmark, max_circuits):
    row = benchmark.pedantic(_hotspot_with_budget, args=(max_circuits,), rounds=1, iterations=1)
    assert row["makespan"] is not None
    if max_circuits == 0:
        assert row["circuits_established"] == 0
    print()
    print(
        format_table(
            ["max_circuits", "circuits_established", "makespan"],
            [[row["max_circuits"], row["circuits_established"], row["makespan"]]],
            title="Hotspot workload vs bypass budget (3x3 grid)",
        )
    )
