"""Benchmark E4: the minimum flow size for which reconfiguration pays off.

The paper frames this as *the* problem of every reconfigurable fabric
(section 3.2).  The benchmark sweeps the reconfiguration delay from the
electrical (microsecond) to the optical (multi-millisecond) regime and
reports the break-even flow size, plus the crossover verdict for a sweep
of flow sizes at one representative delay.
"""

import pytest

from repro.analysis.breakeven import break_even_curve, reconfiguration_crossover_table
from repro.core.reconfiguration import break_even_flow_size
from repro.sim.units import GBPS, kilobytes, megabytes, gigabytes, microseconds, milliseconds
from repro.telemetry.report import format_table

DELAYS = [
    microseconds(1),
    microseconds(10),
    microseconds(100),
    milliseconds(1),
    milliseconds(10),
]

FLOW_SIZES = [
    kilobytes(1),
    kilobytes(64),
    megabytes(1),
    megabytes(64),
    gigabytes(1),
]


def test_break_even_delay_sweep(benchmark):
    rows = benchmark(break_even_curve, DELAYS, 50 * GBPS, 100 * GBPS)
    thresholds = [row["break_even_bits"] for row in rows]
    assert thresholds == sorted(thresholds)
    # Electrical-scale reconfiguration pays off for ~100 KB flows; optical
    # scale needs hundreds of megabytes.
    assert thresholds[0] < megabytes(1)
    assert thresholds[-1] > megabytes(100)
    print()
    print(
        format_table(
            ["reconfig_delay_s", "break_even_bits", "break_even_bytes"],
            [[r["reconfiguration_delay"], r["break_even_bits"], r["break_even_bytes"]] for r in rows],
            title="Break-even flow size vs reconfiguration delay (50G -> 100G)",
        )
    )


def test_crossover_verdicts_at_100us(benchmark):
    delay = microseconds(100)
    rows = benchmark(
        reconfiguration_crossover_table, FLOW_SIZES, 50 * GBPS, 100 * GBPS, delay
    )
    threshold = break_even_flow_size(50 * GBPS, 100 * GBPS, delay)
    for row in rows:
        expected = row["flow_size_bits"] >= threshold
        assert bool(row["worthwhile"]) == expected
    print()
    print(
        format_table(
            ["flow_size_bits", "gain_seconds", "worthwhile"],
            [[r["flow_size_bits"], r["gain_seconds"], bool(r["worthwhile"])] for r in rows],
            title="Reconfiguration crossover at 100 us delay",
        )
    )


@pytest.mark.parametrize("speedup", [1.25, 2.0, 4.0])
def test_break_even_speedup_sensitivity(benchmark, speedup):
    delay = microseconds(10)

    def compute():
        return break_even_flow_size(50 * GBPS, 50 * GBPS * speedup, delay)

    threshold = benchmark(compute)
    assert threshold > 0
    print()
    print(f"speedup x{speedup}: break-even = {threshold:.3e} bits ({threshold / 8e6:.2f} MB)")
