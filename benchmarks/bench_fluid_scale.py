"""Speedup and parity guard for the incremental fluid allocator.

The fluid simulator's reference allocator recomputes the full progressive-
filling max-min allocation over every link and flow at every event and
finds the next completion by linear scan -- O(links x flows) per event,
which is what kept thousand-flow scenarios out of reach.  The incremental
allocator (dirty-set closure + share-heap filling + lazy completion heap)
replaces it.  This benchmark guards both properties the rewrite claims:

* **parity** -- the two allocators produce bit-identical flow completion
  times, event counts and link utilisation on a uniform rack workload, and
* **speed** -- at rack scale (5k concurrent flows on a 16x16 grid, 256
  endpoints) the incremental allocator processes the same event budget at
  least ``FULL_SPEEDUP_FLOOR`` times faster than the reference.

The comparison caps both runs at the same event budget because running the
reference allocator to completion at 5k flows takes hours -- the exact
pathology the incremental allocator removes.  Per-event cost is the honest
unit: both allocators process identical event sequences (the parity tests
pin that), so equal-budget wall-clock ratios are like-for-like.

Run directly for the full guard, or with ``--quick`` for the CI smoke
variant (smaller fleet, looser floor, a few seconds):

    python benchmarks/bench_fluid_scale.py [--quick]

The pytest entry points run the quick variant so ``pytest benchmarks``
stays fast.
"""

import argparse
import sys
import time

from repro.experiments.harness import build_grid_fabric
from repro.sim.flow import reset_flow_ids
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.units import GBPS, megabytes
from repro.workloads.base import WorkloadSpec
from repro.workloads.uniform import UniformRandomWorkload

#: Full-mode configuration: the acceptance-criterion regime.
FULL_FLOWS = 5000
FULL_EVENTS = 60
FULL_SPEEDUP_FLOOR = 10.0

#: Quick-mode configuration: CI smoke.  A genuine allocator regression
#: collapses the ratio to ~1x, so the looser floor still trips on it.
QUICK_FLOWS = 1000
QUICK_EVENTS = 40
QUICK_SPEEDUP_FLOOR = 4.0

PARITY_FLOWS = 400
PARITY_GRID = (8, 8)


def build_simulator(allocator, num_flows, rows=16, columns=16, seed=11):
    """A loaded rack-scale fluid problem: closed uniform burst at t=0.

    The burst regime is the allocator stress case -- every event sees the
    full concurrent flow set -- and both allocators receive byte-identical
    inputs (flow ids are reset, the fabric is rebuilt, routes re-derived).
    """
    reset_flow_ids()
    fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(0.5),
        seed=seed,
    )
    flows = UniformRandomWorkload(spec, num_flows=num_flows).generate()
    simulator = FluidFlowSimulator(flow_rate_limit_bps=25 * GBPS, allocator=allocator)
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    for flow in flows:
        simulator.add_flow(flow, fabric.route_keys(flow.src, flow.dst, flow_id=flow.flow_id))
    return simulator, flows


def timed_run(allocator, num_flows, max_events):
    """Build, run for *max_events*, and return (elapsed_seconds, result)."""
    simulator, _ = build_simulator(allocator, num_flows)
    start = time.perf_counter()
    result = simulator.run(max_events=max_events)
    return time.perf_counter() - start, result


def measure_speedup(num_flows, max_events):
    """Equal-event-budget wall-clock ratio, reference over incremental."""
    incremental_s, incremental = timed_run("incremental", num_flows, max_events)
    reference_s, reference = timed_run("reference", num_flows, max_events)
    assert incremental.events_processed == reference.events_processed, (
        "allocators diverged on the event sequence: "
        f"{incremental.events_processed} vs {reference.events_processed}"
    )
    return {
        "num_flows": num_flows,
        "events": incremental.events_processed,
        "incremental_seconds": incremental_s,
        "reference_seconds": reference_s,
        "speedup": reference_s / incremental_s,
    }


def check_parity():
    """Full-run bit-identical parity on a smaller instance of the same shape."""
    results = {}
    for allocator in ("incremental", "reference"):
        simulator, flows = build_simulator(
            allocator, PARITY_FLOWS, rows=PARITY_GRID[0], columns=PARITY_GRID[1]
        )
        result = simulator.run()
        results[allocator] = (
            [(flow.flow_id, flow.fct) for flow in flows],
            result.end_time,
            result.events_processed,
            result.link_bits_carried,
            result.link_utilisation(),
        )
    assert results["incremental"] == results["reference"], (
        "incremental allocator diverged from the reference oracle"
    )
    return len(results["incremental"][0])


# --------------------------------------------------------------------------- #
# pytest entry points (quick variant)
# --------------------------------------------------------------------------- #
def test_allocators_are_bit_identical_on_a_full_run():
    assert check_parity() == PARITY_FLOWS


def test_incremental_allocator_beats_reference_at_scale():
    row = measure_speedup(QUICK_FLOWS, QUICK_EVENTS)
    assert row["speedup"] >= QUICK_SPEEDUP_FLOOR, (
        f"incremental allocator only {row['speedup']:.1f}x faster than the "
        f"reference at {row['num_flows']} flows (floor {QUICK_SPEEDUP_FLOOR}x)"
    )


# --------------------------------------------------------------------------- #
# Command-line entry point
# --------------------------------------------------------------------------- #
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: smaller fleet, looser speedup floor",
    )
    args = parser.parse_args(argv)
    if args.quick:
        num_flows, max_events, floor = QUICK_FLOWS, QUICK_EVENTS, QUICK_SPEEDUP_FLOOR
    else:
        num_flows, max_events, floor = FULL_FLOWS, FULL_EVENTS, FULL_SPEEDUP_FLOOR

    flows_checked = check_parity()
    print(f"parity OK: {flows_checked} flows bit-identical across allocators")

    row = measure_speedup(num_flows, max_events)
    print(
        f"{row['num_flows']} flows on a 16x16 grid, {row['events']} events: "
        f"incremental {row['incremental_seconds']:.2f}s, "
        f"reference {row['reference_seconds']:.2f}s "
        f"-> {row['speedup']:.1f}x (floor {floor}x)"
    )
    if row["speedup"] < floor:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    print("bench_fluid_scale OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
