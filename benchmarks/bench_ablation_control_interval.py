"""Benchmark A2: sensitivity to the CRC control interval.

The CRC is a periodic closed loop: too slow and it misses the congestion
event (the reconfiguration lands after the damage is done), too fast and it
burns control cycles re-deciding the same thing.  The benchmark runs the
Figure 2 scenario under a sweep of control periods and reports when the
reconfiguration happened and what the workload makespan was.
"""

import pytest

from repro.core.crc import CRCConfig
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.sim.units import megabytes, microseconds, milliseconds
from repro.telemetry.report import format_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload

PERIODS = {
    "50us": microseconds(50),
    "200us": microseconds(200),
    "1ms": milliseconds(1),
    "10ms": milliseconds(10),
}


def _run_with_period(label):
    period = PERIODS[label]
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(2), seed=21)
    flows = HotspotWorkload(
        spec, num_flows=18, hot_fraction=0.6,
        hot_pairs=[("n0x0", "n2x2"), ("n0x2", "n2x0")],
    ).generate()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=label,
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True,
                    grid_rows=3,
                    grid_columns=3,
                    utilisation_threshold=0.5,
                    control_period=period,
                    enable_bypass=False,
                    enable_adaptive_fec=False,
                ),
            },
        )
    )
    crc = record.controller_instance.crc
    first_reconfig = crc.reconfiguration_times[0] if crc.reconfiguration_times else None
    return {
        "control_period": period,
        "iterations": len(crc.iterations),
        "first_reconfiguration": first_reconfig,
        "makespan": record.makespan,
    }


@pytest.mark.parametrize("label", list(PERIODS))
def test_control_interval_sweep(benchmark, label):
    row = benchmark.pedantic(_run_with_period, args=(label,), rounds=1, iterations=1)
    assert row["makespan"] is not None
    # A faster loop reacts no later than its own period plus one interval.
    if row["first_reconfiguration"] is not None:
        assert row["first_reconfiguration"] >= row["control_period"]
    print()
    print(
        format_table(
            ["control_period_s", "iterations", "first_reconfiguration_s", "makespan_s"],
            [[row["control_period"], row["iterations"], row["first_reconfiguration"], row["makespan"]]],
            title=f"CRC control interval = {label}",
        )
    )


def test_faster_loop_reacts_sooner(benchmark):
    def compare():
        return _run_with_period("50us"), _run_with_period("10ms")

    fast, slow = benchmark.pedantic(compare, rounds=1, iterations=1)
    if fast["first_reconfiguration"] is not None and slow["first_reconfiguration"] is not None:
        assert fast["first_reconfiguration"] <= slow["first_reconfiguration"]
    assert fast["iterations"] >= slow["iterations"]
