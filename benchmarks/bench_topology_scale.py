"""Scale guard for the 1k-endpoint topology families.

The fat-tree and dragonfly scenario defaults put 1024 hosts on the
fabric, two orders of magnitude past the paper's rack.  The sweep and
scenario layers call ``fabric_state_row`` (one BFS per endpoint) and the
router's cached shortest-path setup on every row, so those paths must
stay cheap at that size -- this guard pins the declared shapes and holds
build + state-row + first-route inside a deliberately loose CI budget
(the measured cost is well under a second per family).
"""

import time

import pytest

from repro.experiments.harness import build_fabric, fabric_state_row
from repro.fabric.topologies import topology_metadata

#: (topology name, builder dimensions) for the two 1k-endpoint defaults.
SCALE_CASES = [
    ("fat-tree", {"pods": 16}),
    ("dragonfly", {"groups": 16, "routers_per_group": 8, "hosts_per_router": 8}),
]

#: Wall-clock bound on build + fabric_state_row + one routed path, loose
#: enough that slow CI machines do not flake.
BUDGET_SECONDS = 20.0


@pytest.mark.parametrize("name,dims", SCALE_CASES, ids=[c[0] for c in SCALE_CASES])
def test_1k_endpoint_family_within_ci_budget(name, dims):
    meta = topology_metadata(name, dims)
    assert meta.endpoints >= 1000

    start = time.perf_counter()
    fabric = build_fabric(name, **dims)
    row = fabric_state_row(fabric)
    endpoints = fabric.topology.endpoints()
    path = fabric.router.path(endpoints[0], endpoints[-1])
    elapsed = time.perf_counter() - start

    assert len(endpoints) == meta.endpoints
    assert row["diameter_hops"] == float(meta.diameter_hops)
    # The first routed pair crosses the whole fabric: its hop count is the
    # diameter (host at each end, switches between).
    assert len(path) - 1 == meta.diameter_hops
    assert elapsed < BUDGET_SECONDS, (
        f"{name} 1k-endpoint build+state+route took {elapsed:.2f}s "
        f"(budget {BUDGET_SECONDS}s)"
    )


@pytest.mark.parametrize("name,dims", SCALE_CASES, ids=[c[0] for c in SCALE_CASES])
def test_state_row_reflects_declared_shape(name, dims):
    meta = topology_metadata(name, dims)
    fabric = build_fabric(name, **dims)
    row = fabric_state_row(fabric)
    assert row["links"] == meta.links
    assert row["active_lanes"] == meta.links * 2  # builder default lane bundles
    assert fabric.topology.bisection_bandwidth_bps() == pytest.approx(
        meta.bisection_bandwidth_bps
    )
