"""Benchmark E7: adaptive forward error correction (PLP primitive 4).

Sweeps the raw per-lane BER and reports which FEC scheme the adaptive
controller selects, the resulting residual BER, the latency overhead and
the effective throughput -- the trade the CRC makes on behalf of each link.
"""

import pytest

from repro.phy.fec import AdaptiveFecController, FEC_NONE
from repro.sim.units import GBPS
from repro.telemetry.report import format_table

RAW_BERS = [1e-15, 1e-12, 1e-9, 1e-7, 1e-5, 1e-4, 1e-3]


def _sweep(target_ber):
    controller = AdaptiveFecController(target_ber=target_ber)
    rows = []
    current = FEC_NONE
    for raw in RAW_BERS:
        chosen = controller.select(raw, current=current)
        current = chosen
        rows.append(
            {
                "raw_ber": raw,
                "scheme": chosen.name,
                "post_fec_ber": chosen.post_fec_ber(raw),
                "latency_ns": chosen.latency * 1e9,
                "effective_gbps": chosen.effective_rate(100 * GBPS) / GBPS,
            }
        )
    return rows


@pytest.mark.parametrize("target_ber", [1e-12, 1e-15])
def test_adaptive_fec_sweep(benchmark, target_ber):
    rows = benchmark(_sweep, target_ber)
    # Stronger channels get cheaper codes; the dirtiest channels get the
    # strongest code even if the target cannot be met.
    assert rows[0]["scheme"] == "none"
    assert rows[-1]["latency_ns"] >= rows[0]["latency_ns"]
    # Wherever the target is met, the residual BER respects it.
    for row in rows:
        if row["post_fec_ber"] <= target_ber:
            assert row["effective_gbps"] <= 100.0
    print()
    print(
        format_table(
            ["raw_ber", "scheme", "post_fec_ber", "latency_ns", "effective_gbps"],
            [[r[c] for c in ("raw_ber", "scheme", "post_fec_ber", "latency_ns", "effective_gbps")] for r in rows],
            title=f"Adaptive FEC selection (target residual BER {target_ber:.0e})",
        )
    )


def test_fec_selection_throughput(benchmark):
    """Selection itself must be cheap: it runs inside the control loop."""
    controller = AdaptiveFecController()

    def select_many():
        scheme = None
        for _ in range(200):
            for raw in RAW_BERS:
                scheme = controller.select(raw, current=scheme)
        return scheme

    result = benchmark(select_many)
    assert result is not None
