"""Scale guard for the packet-level backend.

The packet simulator used to be a side-channel fed with pre-built packet
lists; the transport layer (:mod:`repro.sim.transport`) turned it into a
backend that packetises whole scenarios.  This benchmark guards the claim
that made that promotion viable: **thousand-flow workloads finish
packetised within CI time**.  It runs a rack-style uniform random burst
through :class:`~repro.fabric.packetsim.PacketBackend` and asserts

* every flow completes (drop-triggered retransmission recovers every
  tail-drop),
* the delivered payload equals the offered payload exactly (segmentation
  conserves bits),
* the run stays inside a deliberately generous wall-clock budget -- a
  regression that reintroduces per-packet overheads an order of magnitude
  higher (e.g. per-hop record allocation at scale, or quadratic port
  bookkeeping) blows far past it, while CI jitter does not get near it.

Since the closed control loop became a packet-backend citizen, both modes
also run a **loop-on-packet** case -- the hotspot-migration scenario
co-simulated with ``controller="loop"`` against the packet network -- and
assert it completes inside its own budget, so adaptive-control packet
runs stay inside the CI time budget too.

Since the batched engine landed (``engine="batched"``), both modes also
run the **engine speedup gate**: the same workload through both engines,
interleaved best-of-N on CPU time (``time.process_time`` -- wall-clock
scheduling noise does not count against either engine), asserting the
batched engine is at least ``SPEEDUP_FLOOR`` times faster *and* that both
engines report bit-identical metrics (the parity contract, enforced at
benchmark scale, not just on the small parity-suite scenarios).

Since the sharded engine landed (``engine="sharded"``), both modes also
run the **sharded speedup gate**: four traffic islands (one per quadrant
of the grid, so the traffic-closure partitioner actually gets four
independent shards) at full scale -- ~648k packets, the regime the
ROADMAP's ">= 5x at 648k packets" open item names.  The gate asserts the
sharded engine clears ``SHARD_SPEEDUP_FLOOR`` over the event engine on
CPU time, that the two report bit-identical metrics, and reports
packets/sec.  The measured row is also written to
``BENCH_packet_shard.json`` so CI archives the throughput record.
Dispatch is pinned to ``inline`` for the measurement: ``process_time``
only meters the parent process, so letting the coordinator fan out to
worker processes would under-count the sharded engine's own work and
flatter the ratio.

Run directly for the full guard, or with ``--quick`` for the CI smoke
variant::

    python benchmarks/bench_packet_scale.py [--quick]

The pytest entry point runs the quick variant so ``pytest benchmarks``
stays fast.
"""

import argparse
import json
import os
import re
import sys
import time

from repro.experiments.harness import build_grid_fabric
from repro.experiments.scenarios import run_scenario
from repro.fabric.packetsim import PacketBackend
from repro.sim.flow import reset_flow_ids
from repro.sim.units import megabytes
from repro.workloads.base import WorkloadSpec
from repro.workloads.uniform import UniformRandomWorkload

#: Quick-mode configuration: CI smoke.  2048 flows is double the issue's
#: >= 1k-flow acceptance floor; ~30k packets end to end.
QUICK_FLOWS = 2048
QUICK_MEAN_MB = 0.02
QUICK_BUDGET_SECONDS = 90.0

#: Full-mode configuration: ~140k packets.
FULL_FLOWS = 4096
FULL_MEAN_MB = 0.05
FULL_BUDGET_SECONDS = 300.0

GRID = (8, 8)

#: Loop-on-packet configuration: the hotspot-migration scenario (the loop
#: is its default controller) co-simulated on the packet backend.  Quick
#: mode shrinks the flows the same way the fidelity gate does.
LOOP_SCENARIO = "hotspot_migration"
LOOP_QUICK_OVERRIDES = {"backend": "packet", "mean_flow_mb": 0.05}
LOOP_QUICK_BUDGET_SECONDS = 60.0
LOOP_FULL_OVERRIDES = {"backend": "packet"}
LOOP_FULL_BUDGET_SECONDS = 240.0

#: Engine-speedup gate: few fat flows rather than many thin ones -- long
#: per-port FIFO runs are where train coalescing pays, and the event
#: engine's per-packet-hop calendar cost is shape-independent, so this is
#: the honest "batching wins" regime (the scale guards above keep the
#: many-thin-flows regime covered).  Best-of-N CPU-time on each engine,
#: interleaved, so a background-load spike must hit every rep of one
#: engine to skew the ratio.
SPEEDUP_FLOWS = 96
SPEEDUP_MEAN_MB = 0.8
SPEEDUP_SEED = 13
QUICK_SPEEDUP_REPS = 2
FULL_SPEEDUP_REPS = 3
#: The acceptance floor.  Measured headroom is ~5.7-6.7x on a loaded CI
#: box; the ROADMAP target for the *next* step (spatial sharding across
#: processes) is >= 10x.
SPEEDUP_FLOOR = 5.0

#: Sharded-engine gate: the ROADMAP's "648k-packet" full workload.  Four
#: islands of all-within-quadrant traffic on the 8x8 grid give the
#: traffic-closure partitioner four link-disjoint shards; fat flows at a
#: paced arrival rate keep per-port FIFO trains long (the vectorised
#: drop-free fast path's regime).  ~647k packets injected end to end.
SHARD_FLOWS_PER_ISLAND = 64
SHARD_MEAN_MB = 3.45
SHARD_ARRIVAL_RATE = 51200.0
SHARD_SEED = 13
SHARD_COUNT = 4
#: Minimum injected packets for the gate to count as the full workload --
#: a workload edit that quietly shrinks the run below the ROADMAP scale
#: fails here instead of gating a toy.
SHARD_MIN_PACKETS = 600_000
#: The acceptance floor over the event engine.  Measured ~5.2-5.3x on a
#: loaded box; best-of-N CPU time keeps the ratio stable near the floor.
SHARD_SPEEDUP_FLOOR = 5.0
QUICK_SHARD_REPS = 1
FULL_SHARD_REPS = 2
SHARD_REPORT_PATH = "BENCH_packet_shard.json"
#: The sharded coordinator reads this to pick worker dispatch; the gate
#: pins it to "inline" because process_time cannot meter child processes.
SHARD_DISPATCH_ENV = "REPRO_SHARD_DISPATCH"


def run_packetised(num_flows, mean_mb, rows=GRID[0], columns=GRID[1], seed=13):
    """Packetise a uniform burst end to end; returns (elapsed, backend, flows)."""
    reset_flow_ids()
    fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(mean_mb),
        seed=seed,
    )
    flows = UniformRandomWorkload(spec, num_flows=num_flows).generate()
    backend = PacketBackend(fabric, flows)
    start = time.perf_counter()
    backend.run()
    return time.perf_counter() - start, backend, flows


def check_scale(num_flows, mean_mb, budget_seconds):
    """Run the guard at one size and return its report row."""
    elapsed, backend, flows = run_packetised(num_flows, mean_mb)
    completed = sum(1 for flow in flows if flow.completed)
    assert completed == num_flows, (
        f"only {completed}/{num_flows} flows completed packetised"
    )
    offered = sum(flow.size_bits for flow in flows)
    delivered = backend.network.bits_delivered
    assert abs(delivered - offered) <= 1e-6 * offered, (
        f"payload not conserved: offered {offered:.0f}b, delivered {delivered:.0f}b"
    )
    packets = backend.network.packets_injected
    assert packets >= 10 * num_flows, (
        f"{packets} packets for {num_flows} flows -- workload is not "
        "meaningfully packetised"
    )
    assert elapsed <= budget_seconds, (
        f"{num_flows} packetised flows took {elapsed:.1f}s "
        f"(budget {budget_seconds:.0f}s)"
    )
    return {
        "num_flows": num_flows,
        "packets": packets,
        "events": backend.simulator.events_executed,
        "drop_fraction": backend.packet_metrics()["drop_fraction"],
        "seconds": elapsed,
        "events_per_second": backend.simulator.events_executed / max(elapsed, 1e-9),
    }


def _timed_engine_run(engine):
    """One speedup-gate run; returns (cpu seconds of backend.run, metrics)."""
    reset_flow_ids()
    fabric = build_grid_fabric(GRID[0], GRID[1], lanes_per_link=2)
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(SPEEDUP_MEAN_MB),
        seed=SPEEDUP_SEED,
    )
    flows = UniformRandomWorkload(spec, num_flows=SPEEDUP_FLOWS).generate()
    backend = PacketBackend(fabric, flows, engine=engine)
    start = time.process_time()
    backend.run()
    elapsed = time.process_time() - start
    return elapsed, backend.packet_metrics()


def measure_engine_speedup(reps):
    """Interleaved best-of-*reps* CPU-time ratio, event over batched."""
    event_times = []
    batched_times = []
    metrics = {}
    for _ in range(reps):
        elapsed, metrics["event"] = _timed_engine_run("event")
        event_times.append(elapsed)
        elapsed, metrics["batched"] = _timed_engine_run("batched")
        batched_times.append(elapsed)
    assert metrics["event"] == metrics["batched"], (
        "engines diverged on the speedup-gate workload -- the batched "
        "engine is only a valid speedup while it is bit-identical"
    )
    event_best = min(event_times)
    batched_best = min(batched_times)
    return {
        "num_flows": SPEEDUP_FLOWS,
        "event_seconds": event_best,
        "batched_seconds": batched_best,
        "speedup": event_best / batched_best,
    }


def check_engine_speedup(reps):
    """Run the engine gate and return its report row."""
    row = measure_engine_speedup(reps)
    assert row["speedup"] >= SPEEDUP_FLOOR, (
        f"batched engine only {row['speedup']:.1f}x faster than the event "
        f"engine at {row['num_flows']} flows (floor {SPEEDUP_FLOOR}x)"
    )
    return row


def _island_workload():
    """Four quadrant-local islands on the 8x8 grid; (fabric, flows)."""
    reset_flow_ids()
    rows, columns = GRID
    fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    quadrants = {}
    for name in fabric.topology.endpoints():
        # endpoint names embed the switch's RxC coordinates
        match = re.search(r"(\d+)x(\d+)", name)
        row, column = int(match.group(1)), int(match.group(2))
        quadrants.setdefault((row >= rows // 2, column >= columns // 2), []).append(name)
    flows = []
    for index, (_, nodes) in enumerate(sorted(quadrants.items())):
        spec = WorkloadSpec(
            nodes=nodes,
            mean_flow_size_bits=megabytes(SHARD_MEAN_MB),
            seed=SHARD_SEED + index,
        )
        flows.extend(
            UniformRandomWorkload(
                spec,
                SHARD_FLOWS_PER_ISLAND,
                arrival_rate_per_second=SHARD_ARRIVAL_RATE,
            ).generate()
        )
    return fabric, flows


def _timed_shard_run(engine, shards=1):
    """One sharded-gate run; returns (cpu seconds, metrics, shard count)."""
    fabric, flows = _island_workload()
    kwargs = {"shards": shards} if engine == "sharded" else {}
    backend = PacketBackend(fabric, flows, engine=engine, **kwargs)
    shard_count = getattr(backend.network, "shard_count", 1)
    start = time.process_time()
    backend.run()
    elapsed = time.process_time() - start
    return elapsed, backend.packet_metrics(), shard_count


def measure_shard_speedup(reps):
    """Interleaved best-of-*reps* CPU-time ratio, event over sharded."""
    saved = os.environ.get(SHARD_DISPATCH_ENV)
    os.environ[SHARD_DISPATCH_ENV] = "inline"
    try:
        event_times = []
        sharded_times = []
        metrics = {}
        shard_count = 0
        for _ in range(reps):
            elapsed, metrics["event"], _ = _timed_shard_run("event")
            event_times.append(elapsed)
            elapsed, metrics["sharded"], shard_count = _timed_shard_run(
                "sharded", shards=SHARD_COUNT
            )
            sharded_times.append(elapsed)
    finally:
        if saved is None:
            del os.environ[SHARD_DISPATCH_ENV]
        else:
            os.environ[SHARD_DISPATCH_ENV] = saved
    assert metrics["event"] == metrics["sharded"], (
        "engines diverged on the sharded-gate workload -- the sharded "
        "engine is only a valid speedup while it is bit-identical"
    )
    event_best = min(event_times)
    sharded_best = min(sharded_times)
    packets = metrics["sharded"]["packets_injected"]
    return {
        "num_flows": 4 * SHARD_FLOWS_PER_ISLAND,
        "packets": packets,
        "shards": shard_count,
        "event_seconds": event_best,
        "sharded_seconds": sharded_best,
        "speedup": event_best / sharded_best,
        "packets_per_second": packets / sharded_best,
    }


def check_shard_speedup(reps, report_path=SHARD_REPORT_PATH):
    """Run the sharded gate, write the throughput record, return the row."""
    row = measure_shard_speedup(reps)
    assert row["packets"] >= SHARD_MIN_PACKETS, (
        f"sharded gate injected only {row['packets']} packets -- the gate "
        f"must run the full >= {SHARD_MIN_PACKETS}-packet workload"
    )
    assert row["shards"] == SHARD_COUNT, (
        f"island workload partitioned into {row['shards']} shards, "
        f"expected {SHARD_COUNT} -- the gate is not exercising sharding"
    )
    assert row["speedup"] >= SHARD_SPEEDUP_FLOOR, (
        f"sharded engine only {row['speedup']:.1f}x faster than the event "
        f"engine at {row['packets']} packets (floor {SHARD_SPEEDUP_FLOOR}x)"
    )
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(row, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return row


def check_loop_on_packet(overrides, budget_seconds):
    """Run the loop-on-packet case and return its report row."""
    reset_flow_ids()
    start = time.perf_counter()
    row = run_scenario(LOOP_SCENARIO, overrides)
    elapsed = time.perf_counter() - start
    metrics = row["metrics"]
    assert row["params"]["controller"] == "loop"
    assert metrics["backend"] == "packet"
    assert metrics["completion_fraction"] == 1.0, (
        f"loop-on-packet left {1.0 - metrics['completion_fraction']:.3f} "
        "of the workload unfinished"
    )
    assert not metrics["truncated"]
    assert elapsed <= budget_seconds, (
        f"loop-on-packet {LOOP_SCENARIO} took {elapsed:.1f}s "
        f"(budget {budget_seconds:.0f}s)"
    )
    return {
        "scenario": LOOP_SCENARIO,
        "num_flows": metrics["num_flows"],
        "mean_fct": metrics["mean_fct"],
        "reconfigurations": metrics["reconfigurations"],
        "seconds": elapsed,
    }


# --------------------------------------------------------------------------- #
# pytest entry points (quick variants)
# --------------------------------------------------------------------------- #
def test_thousand_flow_scenarios_finish_packetised_in_ci_time():
    row = check_scale(QUICK_FLOWS, QUICK_MEAN_MB, QUICK_BUDGET_SECONDS)
    assert row["num_flows"] >= 1000


def test_loop_on_packet_finishes_in_ci_time():
    row = check_loop_on_packet(LOOP_QUICK_OVERRIDES, LOOP_QUICK_BUDGET_SECONDS)
    assert row["num_flows"] > 0


def test_batched_engine_is_5x_faster_and_bit_identical():
    row = check_engine_speedup(QUICK_SPEEDUP_REPS)
    assert row["speedup"] >= SPEEDUP_FLOOR


def test_sharded_engine_is_5x_faster_at_full_scale():
    # Always the full ~648k-packet workload -- the sharded gate has no
    # quick variant because the floor is only meaningful at ROADMAP scale.
    # No report file from pytest runs; only the CLI writes the record.
    row = check_shard_speedup(QUICK_SHARD_REPS, report_path=None)
    assert row["speedup"] >= SHARD_SPEEDUP_FLOOR


# --------------------------------------------------------------------------- #
# Command-line entry point
# --------------------------------------------------------------------------- #
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: fewer/smaller flows, tighter budget",
    )
    args = parser.parse_args(argv)
    if args.quick:
        num_flows, mean_mb, budget = QUICK_FLOWS, QUICK_MEAN_MB, QUICK_BUDGET_SECONDS
        loop_overrides, loop_budget = LOOP_QUICK_OVERRIDES, LOOP_QUICK_BUDGET_SECONDS
        speedup_reps = QUICK_SPEEDUP_REPS
        shard_reps = QUICK_SHARD_REPS
    else:
        num_flows, mean_mb, budget = FULL_FLOWS, FULL_MEAN_MB, FULL_BUDGET_SECONDS
        loop_overrides, loop_budget = LOOP_FULL_OVERRIDES, LOOP_FULL_BUDGET_SECONDS
        speedup_reps = FULL_SPEEDUP_REPS
        shard_reps = FULL_SHARD_REPS
    try:
        row = check_scale(num_flows, mean_mb, budget)
        loop_row = check_loop_on_packet(loop_overrides, loop_budget)
        speedup_row = check_engine_speedup(speedup_reps)
        shard_row = check_shard_speedup(shard_reps)
    except AssertionError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(
        f"{row['num_flows']} flows packetised on a {GRID[0]}x{GRID[1]} grid: "
        f"{row['packets']} packets, {row['events']} events, "
        f"drop fraction {row['drop_fraction']:.3f}, "
        f"{row['seconds']:.2f}s ({row['events_per_second']:.0f} events/s, "
        f"budget {budget:.0f}s)"
    )
    print(
        f"loop-on-packet {loop_row['scenario']}: {loop_row['num_flows']} flows, "
        f"{loop_row['reconfigurations']} reconfigurations, "
        f"{loop_row['seconds']:.2f}s (budget {loop_budget:.0f}s)"
    )
    print(
        f"engine speedup at {speedup_row['num_flows']} fat flows: "
        f"event {speedup_row['event_seconds']:.2f}s cpu, "
        f"batched {speedup_row['batched_seconds']:.2f}s cpu "
        f"-> {speedup_row['speedup']:.1f}x (floor {SPEEDUP_FLOOR}x)"
    )
    print(
        f"sharded speedup at {shard_row['packets']} packets "
        f"({shard_row['shards']} island shards): "
        f"event {shard_row['event_seconds']:.2f}s cpu, "
        f"sharded {shard_row['sharded_seconds']:.2f}s cpu "
        f"-> {shard_row['speedup']:.1f}x "
        f"({shard_row['packets_per_second']:.0f} packets/s, "
        f"floor {SHARD_SPEEDUP_FLOOR}x; record in {SHARD_REPORT_PATH})"
    )
    print("bench_packet_scale OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
