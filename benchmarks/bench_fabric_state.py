"""Micro-benchmark guard for ``fabric_state_row``.

The all-pairs hop/latency statistics used to be computed with one
``router.path`` call per endpoint pair -- ``O(n^2)`` cached-Dijkstra
queries that dominated every sweep row on larger racks.  The current
implementation runs one breadth-first search per endpoint and never
touches the router.  This benchmark guards both properties:

* correctness -- the BFS statistics match independent per-pair
  shortest-path computations (and closed-form path latencies on a
  unique-path fabric), and
* the complexity claim -- the router cache sees zero traffic, and a
  64-endpoint rack completes within a generous wall-clock bound.
"""

import time

import networkx as nx
import pytest

from repro.experiments.harness import (
    build_grid_fabric,
    build_torus_fabric,
    fabric_state_row,
)
from repro.fabric.fabric import Fabric
from repro.fabric.topology import TopologyBuilder
from repro.sim.units import bits_from_bytes


@pytest.mark.parametrize(
    "fabric_factory",
    [
        lambda: build_grid_fabric(3, 3, lanes_per_link=2),
        lambda: build_grid_fabric(4, 4, lanes_per_link=2),
        lambda: build_torus_fabric(3, 3, lanes_per_link=1),
    ],
)
def test_fabric_state_row_matches_pairwise_shortest_paths(fabric_factory):
    fabric = fabric_factory()
    row = fabric_state_row(fabric)
    graph = fabric.topology.graph
    endpoints = fabric.topology.endpoints()
    hops = [
        nx.shortest_path_length(graph, src, dst)
        for index, src in enumerate(endpoints)
        for dst in endpoints[index + 1:]
    ]
    assert row["diameter_hops"] == max(hops)
    assert row["mean_hops"] == pytest.approx(sum(hops) / len(hops))
    assert 0 < row["mean_latency"] <= row["max_latency"]


def test_fabric_state_row_latency_matches_closed_form_on_unique_paths():
    # A line fabric has exactly one path per pair, so the BFS latency must
    # equal Fabric.path_latency exactly -- no tie-break ambiguity.
    fabric = Fabric(TopologyBuilder(lanes_per_link=2).line(5))
    row = fabric_state_row(fabric)
    packet_bits = bits_from_bytes(1500.0)
    endpoints = fabric.topology.endpoints()
    totals = []
    for index, src in enumerate(endpoints):
        for dst in endpoints[index + 1:]:
            path = fabric.router.path(src, dst)
            totals.append(fabric.path_latency(path, packet_bits)["total"])
    assert row["max_latency"] == pytest.approx(max(totals), rel=1e-12)
    assert row["mean_latency"] == pytest.approx(sum(totals) / len(totals), rel=1e-12)


def test_fabric_state_row_ignores_router_price_weights():
    # The statistics are topological by contract: a weight function left on
    # the router by a finished control-loop run (prices reflect the *loaded*
    # fabric) must not contaminate the idle-fabric hop/latency columns.
    baseline = fabric_state_row(build_grid_fabric(3, 3, lanes_per_link=2))
    weighted = build_grid_fabric(3, 3, lanes_per_link=2)
    weighted.set_router_weight(lambda link: 1.0 if link.a.startswith("n0") else 100.0)
    assert fabric_state_row(weighted) == baseline


def test_fabric_state_row_never_queries_the_router(benchmark):
    # 64 endpoints = 2016 pairs; the old implementation issued one router
    # query per pair.  The BFS version must leave the router cache cold.
    fabric = build_grid_fabric(8, 8, lanes_per_link=2)
    row = benchmark.pedantic(fabric_state_row, args=(fabric,), rounds=1, iterations=1)
    assert fabric.router.cache_misses == 0
    assert fabric.router.cache_hits == 0
    assert row["diameter_hops"] == 14.0


def test_fabric_state_row_scales_to_a_big_rack():
    fabric = build_grid_fabric(12, 12, lanes_per_link=2)
    start = time.perf_counter()
    row = fabric_state_row(fabric)
    elapsed = time.perf_counter() - start
    assert row["diameter_hops"] == 22.0
    # 144 endpoints / 10k+ pairs in well under a second of BFS work; the
    # bound is deliberately loose so slow CI machines do not flake.
    assert elapsed < 5.0, f"fabric_state_row took {elapsed:.2f}s on a 12x12 rack"
