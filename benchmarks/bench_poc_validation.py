"""Benchmark E6: small-scale simulation validation (hardware-POC substitute).

The paper's methodology validates the small-scale simulation against a
NetFPGA SUME proof of concept before trusting the large-scale simulation.
This reproduction substitutes agreement between the packet-level simulator
and the closed-form analytical pipeline model; the benchmark runs the
validation suite and reports the worst relative error.
"""

from repro.analysis.validation import validate_against_analytical, validation_summary
from repro.telemetry.report import format_table


def test_packet_simulator_matches_analytical_model(benchmark):
    results = benchmark.pedantic(
        validate_against_analytical,
        kwargs={"chain_lengths": (2, 3, 5, 9), "packet_sizes_bytes": (64.0, 1500.0)},
        rounds=1,
        iterations=1,
    )
    summary = validation_summary(results)
    assert summary["max_relative_error"] < 1e-6
    print()
    print(
        format_table(
            ["scenario", "hops", "packet_bytes", "simulated_s", "analytical_s", "rel_error"],
            [
                [r.scenario, r.hops, r.packet_size_bytes, r.simulated_latency,
                 r.analytical_latency, r.relative_error]
                for r in results
            ],
            title="Packet-level simulation vs closed-form model (POC substitute)",
        )
    )
    print(f"max relative error: {summary['max_relative_error']:.3e}")
