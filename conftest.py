"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
resolve build dependencies); an installed copy always takes precedence
because ``site-packages`` appears earlier on ``sys.path`` only when the
package is genuinely installed there.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
