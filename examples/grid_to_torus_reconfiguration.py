"""The paper's Figure 2 scenario, narrated step by step.

A 4x4 rack starts as a grid with two lanes per link.  Hotspot traffic
drives utilisation up; the Closed Ring Control observes the congestion
indications, prices the links, decides the grid-to-torus plan clears the
break-even test, and issues the PLP command batch: harvest one lane from
every grid link, re-point the freed lanes into the torus wrap-around links.
The script prints the fabric before and after, the command batch, and the
workload outcome.

Run with::

    python examples/grid_to_torus_reconfiguration.py
"""

from repro import (
    CRCConfig,
    ExperimentSpec,
    GridToTorusPlan,
    HotspotWorkload,
    WorkloadSpec,
    build_grid_fabric,
    run_experiment,
)
from repro.sim.units import bits_from_bytes, megabytes
from repro.telemetry.report import format_table

ROWS, COLUMNS = 4, 4


def describe_fabric(fabric, label: str) -> list:
    packet = bits_from_bytes(1500)
    corner_a = "n0x0"
    corner_b = f"n{ROWS - 1}x{COLUMNS - 1}"
    path = fabric.router.path(corner_a, corner_b)
    latency = fabric.path_latency(path, packet)["total"]
    report = fabric.power_report()
    return [
        label,
        len(fabric.topology.links()),
        fabric.topology.total_active_lanes(),
        fabric.topology.diameter(),
        round(fabric.topology.average_shortest_path_hops(), 3),
        f"{latency * 1e6:.2f} us",
        f"{report.links_watts + report.switches_watts:.1f} W",
    ]


def main() -> None:
    fabric = build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2)
    rows = [describe_fabric(fabric, "grid (before)")]

    # Show the reconfiguration plan the CRC will consider.
    plan = GridToTorusPlan(ROWS, COLUMNS).build(fabric.topology)
    print(f"reconfiguration plan: {plan.name}")
    print(f"  {plan.rationale}")
    print(f"  {plan.command_count} PLP commands, expected duration "
          f"{plan.expected_duration * 1e6:.1f} us")
    print()

    # Hotspot traffic across the grid's long diagonals -- exactly the pattern
    # the wrap-around links shorten.
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(), mean_flow_size_bits=megabytes(4), seed=1
    )
    workload = HotspotWorkload(
        spec,
        num_flows=48,
        hot_fraction=0.6,
        hot_pairs=[("n0x0", f"n{ROWS - 1}x{COLUMNS - 1}"), (f"n0x{COLUMNS - 1}", f"n{ROWS - 1}x0")],
    )

    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=workload.generate(),
            label="figure2",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True,
                    grid_rows=ROWS,
                    grid_columns=COLUMNS,
                    utilisation_threshold=0.5,
                ),
            },
        )
    )
    crc = record.controller_instance.crc

    rows.append(describe_fabric(fabric, "adaptive (after CRC)"))
    print(
        format_table(
            ["configuration", "links", "active lanes", "diameter", "mean hops",
             "corner-to-corner latency", "fabric power"],
            rows,
            title="Figure 2: the fabric before and after the CRC acted",
        )
    )
    print()
    print(f"workload makespan: {record.makespan:.6f} s")
    print(f"CRC iterations: {len(crc.iterations)}, "
          f"reconfiguration batches: {len(crc.reconfiguration_times)}")
    if crc.reconfiguration_times:
        print(f"first reconfiguration at t = {crc.reconfiguration_times[0] * 1e3:.3f} ms")
    print(f"PLP commands executed: {crc.executor.commands_executed} "
          f"(failed: {crc.executor.commands_failed}), "
          f"lanes left in pool: {crc.executor.free_lane_count}")


if __name__ == "__main__":
    main()
