"""Quickstart: an adaptive rack fabric in ~40 lines.

Builds a 4x4 grid of disaggregated sleds at two lanes per link, runs a
small MapReduce shuffle through the single experiment entrypoint with the
``crc`` controller (a Closed Ring Control allowed to reconfigure the grid
into a torus), and prints the headline results.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CRCConfig,
    ExperimentSpec,
    MapReduceShuffleWorkload,
    WorkloadSpec,
    build_grid_fabric,
    run_experiment,
)
from repro.sim.units import megabytes
from repro.telemetry.report import format_table

ROWS, COLUMNS = 4, 4


def main() -> None:
    # 1. The fabric: a 4x4 grid, two 25G lanes per link.
    fabric = build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2)
    print(f"fabric: {fabric.topology!r}")
    print(f"initial diameter: {fabric.topology.diameter()} hops, "
          f"power: {fabric.power_report().total_watts:.1f} W")

    # 2. The workload: an all-to-all shuffle, the paper's motivating example.
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(), mean_flow_size_bits=megabytes(4), seed=1
    )
    flows = MapReduceShuffleWorkload(spec).generate()

    # 3. Run it under the latency-minimising CRC, which may re-deploy lanes.
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="quickstart",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True,
                    grid_rows=ROWS,
                    grid_columns=COLUMNS,
                    utilisation_threshold=0.5,
                ),
            },
        )
    )

    # 4. Report.
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["flows", len(record.flows)],
                ["makespan (s)", record.makespan],
                ["mean FCT (s)", record.mean_fct],
                ["p99 FCT (s)", record.p99_fct],
                ["straggler ratio", record.straggler],
                ["CRC reconfigurations", record.controller_summary.reconfigurations],
                ["final diameter (hops)", fabric.topology.diameter()],
                ["final power (W)", fabric.power_report().total_watts],
            ],
            title="Quickstart results",
        )
    )


if __name__ == "__main__":
    main()
