"""Figure 1 and the simulation-vs-model validation, from the public API.

Prints the paper's Figure 1 series (media propagation vs cut-through
switching latency, one switching element every two metres) and then runs
the validation suite that stands in for the paper's NetFPGA proof of
concept: the packet-level simulator must agree with the closed-form model.

Run with::

    python examples/latency_analysis.py
"""

from repro import LatencyModel, media_vs_switching_series, validate_against_analytical
from repro.analysis.validation import validation_summary
from repro.telemetry.report import format_table


def main() -> None:
    model = LatencyModel()
    rows = media_vs_switching_series(range(2, 42, 4), packet_size_bytes=1500, model=model)
    print(
        format_table(
            ["distance (m)", "switch hops", "media latency (s)", "switching latency (s)", "ratio"],
            [
                [r["distance_meters"], r["hops"], r["media_latency"], r["switching_latency"], r["ratio"]]
                for r in rows
            ],
            title="Figure 1: media vs cut-through switching latency (1500 B packets)",
        )
    )
    worst = rows[-1]
    print()
    print(
        f"at {worst['distance_meters']:.0f} m the packet crosses "
        f"{worst['hops']:.0f} switching elements; switching contributes "
        f"{worst['ratio']:.0f}x more latency than the media."
    )

    print()
    results = validate_against_analytical()
    print(
        format_table(
            ["scenario", "hops", "packet (B)", "simulated (s)", "analytical (s)", "rel. error"],
            [
                [r.scenario, r.hops, r.packet_size_bytes, r.simulated_latency,
                 r.analytical_latency, r.relative_error]
                for r in results
            ],
            title="Validation: packet-level simulation vs closed-form model",
        )
    )
    summary = validation_summary(results)
    print()
    print(f"max relative error across scenarios: {summary['max_relative_error']:.2e}")


if __name__ == "__main__":
    main()
