"""The paper's motivating workload: a MapReduce shuffle across the rack.

"Since a reducer has to wait for data from all mappers, the slowest link
pulls down the performance of an entire system."  This example runs the
same skewed shuffle over three fabrics -- a static grid, the adaptive
fabric, and an idealised circuit-switched oracle -- and compares makespan,
tail FCT and the straggler ratio.  The grid runs differ only in the
controller name handed to ``run_experiment``.

Run with::

    python examples/mapreduce_shuffle.py
"""

from repro import (
    CRCConfig,
    ExperimentSpec,
    MapReduceShuffleWorkload,
    OracleCircuitBaseline,
    WorkloadSpec,
    build_grid_fabric,
    run_experiment,
)
from repro.sim.units import GBPS, megabytes
from repro.telemetry.metrics import straggler_ratio
from repro.telemetry.report import format_table

ROWS, COLUMNS = 4, 8
SKEW = 2.0


def make_flows(seed: int):
    from repro.fabric.topology import TopologyBuilder

    names = [
        TopologyBuilder.grid_node_name(row, column)
        for row in range(ROWS)
        for column in range(COLUMNS)
    ]
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(8), seed=seed)
    return MapReduceShuffleWorkload(spec, skew_factor=SKEW).generate()


def main() -> None:
    rows = []

    # Static grid, no control loop.
    static = run_experiment(
        ExperimentSpec(
            fabric=build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2),
            flows=make_flows(2),
            label="grid-static",
            controller="static",
        )
    )
    rows.append(["grid-static", static.makespan, static.mean_fct, static.p99_fct, static.straggler])

    # Adaptive fabric under the CRC.
    adaptive = run_experiment(
        ExperimentSpec(
            fabric=build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2),
            flows=make_flows(2),
            label="adaptive-crc",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True,
                    grid_rows=ROWS,
                    grid_columns=COLUMNS,
                    utilisation_threshold=0.5,
                ),
            },
        )
    )
    rows.append(["adaptive-crc", adaptive.makespan, adaptive.mean_fct, adaptive.p99_fct, adaptive.straggler])

    # Idealised circuit-switched oracle (every flow a dedicated circuit).
    oracle = OracleCircuitBaseline(nic_rate_bps=100 * GBPS)
    oracle_flows = oracle.run(make_flows(2))
    rows.append(
        [
            "oracle-circuit",
            oracle_flows.makespan(),
            oracle_flows.mean_fct(),
            oracle_flows.fct_percentile(99),
            straggler_ratio(oracle_flows),
        ]
    )

    print(
        format_table(
            ["configuration", "makespan (s)", "mean FCT (s)", "p99 FCT (s)", "straggler ratio"],
            rows,
            title=f"MapReduce shuffle, {ROWS}x{COLUMNS} rack, skew x{SKEW}",
        )
    )
    print()
    print(f"adaptive fabric reconfigurations: "
          f"{adaptive.controller_summary.reconfigurations}")
    print(
        "the reducer-side straggler ratio is the paper's concern: the adaptive "
        "fabric keeps it at or below the static grid's."
    )


if __name__ == "__main__":
    main()
