"""The control loop end-to-end: a migrating hotspot on a 3x3 rack.

Phase 1 concentrates traffic on one grid diagonal; 800 us in, the hotspot
migrates to the other.  The ``loop`` controller watches telemetry, prices
links, reroutes flows, and fires the grid-to-torus reconfiguration when
the break-even test says it pays.  Both runs go through the single
``run_experiment`` entrypoint -- only the controller name differs.
Run: PYTHONPATH=src python examples/adaptive_hotspot.py
"""

from repro import (
    ControlLoopConfig,
    ExperimentSpec,
    WorkloadSpec,
    build_grid_fabric,
    run_experiment,
)
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import reset_flow_ids
from repro.sim.units import megabytes, microseconds
from repro.workloads.hotspot import HotspotWorkload

ROWS = COLUMNS = 3
NAME = TopologyBuilder.grid_node_name
DIAGONALS = [(NAME(0, 0), NAME(2, 2)), (NAME(0, 2), NAME(2, 0))]


def fabric_and_flows(phase_gap=microseconds(800.0)):
    """Fresh 3x3 grid plus two hotspot phases, one per diagonal."""
    reset_flow_ids()
    fabric = build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2)
    flows = []
    for phase, pair in enumerate(DIAGONALS):
        spec = WorkloadSpec(
            nodes=fabric.topology.endpoints(),
            mean_flow_size_bits=megabytes(2.0),
            seed=7 + phase,
            start_time=phase * phase_gap,
        )
        flows += HotspotWorkload(
            spec, num_flows=18, hot_fraction=0.6, hot_pairs=[pair]
        ).generate()
    return fabric, sorted(flows, key=lambda f: (f.start_time, f.flow_id))


if __name__ == "__main__":
    fabric, flows = fabric_and_flows()
    static = run_experiment(
        ExperimentSpec(fabric=fabric, flows=flows, label="static", controller="static")
    )

    fabric, flows = fabric_and_flows()
    adaptive = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="adaptive",
            controller="loop",
            controller_config={
                "config": ControlLoopConfig(interval=microseconds(100.0)),
                "grid_rows": ROWS,
                "grid_columns": COLUMNS,
            },
        )
    )
    loop = adaptive.controller_instance.loop

    print(f"static   mean FCT: {static.mean_fct * 1e3:.3f} ms")
    print(f"adaptive mean FCT: {adaptive.mean_fct * 1e3:.3f} ms")
    print(f"reconfigurations:  {[f'{t * 1e6:.0f} us' for t in loop.reconfiguration_times]}")
    print(f"flows rerouted:    {loop.flows_rerouted_total}")
    print(f"fabric now:        {len(fabric.topology.links())} links (grid had 12)")
