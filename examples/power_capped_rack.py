"""Operating a rack fabric under a strict power budget.

Rack-scale systems inherit the power envelope of a traditional rack.  This
example runs disaggregated-storage traffic (compute sleds reading and
writing NVMe sleds) while the Closed Ring Control's power-cap policy gates
lanes off to keep the fabric under a sweep of power caps, and reports the
throughput cost of each cap.

Run with::

    python examples/power_capped_rack.py
"""

from repro import (
    CRCConfig,
    ExperimentSpec,
    WorkloadSpec,
    build_grid_fabric,
    run_experiment,
)
from repro.sim.units import megabytes, microseconds
from repro.telemetry.report import format_table
from repro.workloads.storage import DisaggregatedStorageWorkload

ROWS, COLUMNS = 4, 4


def run_with_cap(cap_fraction: float):
    fabric = build_grid_fabric(ROWS, COLUMNS, lanes_per_link=2)
    uncapped_watts = fabric.power_report().total_watts
    cap = uncapped_watts * cap_fraction
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(), mean_flow_size_bits=megabytes(1), seed=6
    )
    workload = DisaggregatedStorageWorkload(spec, num_requests=120, requests_per_second=5e4)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=workload.generate(),
            label=f"cap {cap_fraction:.0%}",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    power_cap_watts=cap,
                    enable_bypass=False,
                    enable_adaptive_fec=False,
                    control_period=microseconds(200),
                ),
            },
        )
    )
    return [
        f"{cap_fraction:.0%}",
        round(cap, 1),
        round(fabric.power_report().total_watts, 1),
        fabric.topology.total_active_lanes(),
        record.makespan,
        record.p99_fct,
    ]


def main() -> None:
    rows = [run_with_cap(fraction) for fraction in (1.0, 0.95, 0.9, 0.85)]
    print(
        format_table(
            ["power cap", "cap (W)", "final fabric power (W)", "active lanes",
             "makespan (s)", "p99 FCT (s)"],
            rows,
            title="Disaggregated storage traffic under a rack power cap (4x4 grid)",
        )
    )
    print()
    print(
        "tighter caps force the CRC to gate lanes off on cold links; the "
        "workload completes in all cases, trading completion time for watts."
    )


if __name__ == "__main__":
    main()
