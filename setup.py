"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so
that editable installs (``pip install -e .``) work in offline environments
whose setuptools predates PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
